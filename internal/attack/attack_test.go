package attack

import (
	"math"
	"testing"

	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/quant"
	"privehd/internal/vecmath"
)

func randomFeatures(seed uint64, n int) []float64 {
	src := hrand.New(seed)
	f := make([]float64, n)
	for i := range f {
		f[i] = src.Float64()
	}
	return f
}

func quantizedTruth(enc *hdc.ScalarEncoder, features []float64) []float64 {
	// What Eq. 10 actually recovers: the level values f(v), not the raw
	// features ("we are retrieving the features f_i, that might or might
	// not be the exact raw elements").
	out := make([]float64, len(features))
	for i, v := range features {
		out[i] = hdc.LevelValue(hdc.LevelIndex(v, enc.Levels()), enc.Levels())
	}
	return out
}

func TestDecodeRecoversScalarEncoding(t *testing.T) {
	// The core privacy breach: at high dimension the decoder recovers the
	// encoded level values almost exactly.
	cfg := hdc.Config{Dim: 10000, Features: 50, Levels: 16, Seed: 1}
	enc, err := hdc.NewScalarEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	features := randomFeatures(2, cfg.Features)
	h := enc.Encode(features)
	recon, err := Decode(enc, h)
	if err != nil {
		t.Fatal(err)
	}
	truth := quantizedTruth(enc, features)
	res := Measure(truth, recon)
	if res.MSE > 0.01 {
		t.Errorf("MSE = %v, want < 0.01 (near-perfect reconstruction)", res.MSE)
	}
	if res.PSNR < 20 {
		t.Errorf("PSNR = %v dB, want > 20 (paper: ≈23.6 for clean encodings)", res.PSNR)
	}
}

func TestDecodeErrorGrowsWithFewerDims(t *testing.T) {
	// Orthogonality cross-talk scales as sqrt(D_iv/D_hv): decoding quality
	// must degrade monotonically (in expectation) as D_hv shrinks.
	features := randomFeatures(3, 40)
	var prev float64 = -1
	for _, dim := range []int{8000, 1000, 200} {
		cfg := hdc.Config{Dim: dim, Features: 40, Levels: 8, Seed: 4}
		enc, err := hdc.NewScalarEncoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := enc.Encode(features)
		recon, err := Decode(enc, h)
		if err != nil {
			t.Fatal(err)
		}
		mse := vecmath.MSE(quantizedTruth(enc, features), recon)
		if prev >= 0 && mse < prev {
			t.Errorf("MSE at dim %d (%v) should exceed MSE at larger dim (%v)", dim, mse, prev)
		}
		prev = mse
	}
}

func TestDecodeDimensionCheck(t *testing.T) {
	cfg := hdc.Config{Dim: 100, Features: 5, Levels: 4, Seed: 5}
	enc, _ := hdc.NewScalarEncoder(cfg)
	if _, err := Decode(enc, make([]float64, 7)); err == nil {
		t.Error("expected dimension error")
	}
}

func TestQuantizationDegradesReconstruction(t *testing.T) {
	// The paper's inference-privacy claim: bipolar quantization of the
	// query degrades reconstruction (higher MSE) much more than it could
	// ever help the attacker.
	cfg := hdc.Config{Dim: 8000, Features: 60, Levels: 16, Seed: 6}
	enc, err := hdc.NewScalarEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	features := randomFeatures(7, cfg.Features)
	truth := quantizedTruth(enc, features)
	h := enc.Encode(features)

	clean, err := DecodeScaled(enc, h)
	if err != nil {
		t.Fatal(err)
	}
	hq := quant.Bipolar{}.Quantize(h)
	degraded, err := DecodeScaled(enc, hq)
	if err != nil {
		t.Fatal(err)
	}
	mseClean := vecmath.MSE(truth, clean)
	mseQuant := vecmath.MSE(truth, degraded)
	if mseQuant <= mseClean {
		t.Errorf("quantized MSE %v should exceed clean MSE %v", mseQuant, mseClean)
	}
}

func TestMaskingDegradesReconstructionFurther(t *testing.T) {
	cfg := hdc.Config{Dim: 8000, Features: 60, Levels: 16, Seed: 8}
	enc, err := hdc.NewScalarEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	features := randomFeatures(9, cfg.Features)
	truth := quantizedTruth(enc, features)
	h := quant.Bipolar{}.Quantize(enc.Encode(features))

	unmasked, err := DecodeScaled(enc, h)
	if err != nil {
		t.Fatal(err)
	}
	masked := vecmath.Clone(h)
	for j := 0; j < len(masked)/2; j++ {
		masked[j] = 0
	}
	mrecon, err := DecodeScaled(enc, masked)
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.MSE(truth, mrecon) <= vecmath.MSE(truth, unmasked) {
		t.Error("masking should further degrade reconstruction")
	}
}

func TestLevelDecoderRecovers(t *testing.T) {
	cfg := hdc.Config{Dim: 6000, Features: 30, Levels: 8, Seed: 10}
	enc, err := hdc.NewLevelEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	features := randomFeatures(11, cfg.Features)
	h := enc.Encode(features)
	dec := NewLevelDecoder(enc)
	recon, err := dec.Decode(h)
	if err != nil {
		t.Fatal(err)
	}
	// Truth: the level values actually encoded.
	exact := 0
	for m, v := range features {
		want := hdc.LevelValue(hdc.LevelIndex(v, cfg.Levels), cfg.Levels)
		if math.Abs(recon[m]-want) < 1e-9 {
			exact++
		}
	}
	if exact < cfg.Features*9/10 {
		t.Errorf("level decoder recovered %d/%d features exactly, want ≥90%%", exact, cfg.Features)
	}
}

func TestLevelDecoderDimensionCheck(t *testing.T) {
	cfg := hdc.Config{Dim: 100, Features: 4, Levels: 4, Seed: 12}
	enc, _ := hdc.NewLevelEncoder(cfg)
	dec := NewLevelDecoder(enc)
	if _, err := dec.Decode(make([]float64, 3)); err == nil {
		t.Error("expected dimension error")
	}
}

func TestModelDifferenceRecoversMissingRecord(t *testing.T) {
	// The §III-A membership attack end-to-end: train two models differing
	// by one record; the class-difference must be that record's encoding,
	// and decoding it must reveal the record.
	cfg := hdc.Config{Dim: 10000, Features: 40, Levels: 8, Seed: 13}
	enc, err := hdc.NewScalarEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := hrand.New(14)
	const classes = 3
	var X [][]float64
	var y []int
	for i := 0; i < 30; i++ {
		X = append(X, randomFeatures(uint64(100+i), cfg.Features))
		y = append(y, src.IntN(classes))
	}
	secret := randomFeatures(999, cfg.Features)
	secretClass := 1

	encoded := hdc.EncodeBatch(enc, X, 0)
	m1, err := hdc.Train(encoded, y, classes, cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m1.Clone()
	m2.Add(secretClass, enc.Encode(secret))

	diff, class, err := ModelDifference(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if class != secretClass {
		t.Errorf("attack found class %d, want %d", class, secretClass)
	}
	recon, err := Decode(enc, diff)
	if err != nil {
		t.Fatal(err)
	}
	res := Measure(quantizedTruth(enc, secret), recon)
	if res.MSE > 0.01 {
		t.Errorf("recovered record MSE = %v, want near-exact", res.MSE)
	}
}

func TestModelDifferenceIdenticalModels(t *testing.T) {
	m := hdc.NewModel(2, 10)
	if _, _, err := ModelDifference(m, m.Clone()); err == nil {
		t.Error("expected error for identical models")
	}
}

func TestModelDifferenceGeometryCheck(t *testing.T) {
	a := hdc.NewModel(2, 10)
	b := hdc.NewModel(3, 10)
	if _, _, err := ModelDifference(a, b); err == nil {
		t.Error("expected geometry error")
	}
}

func TestMeasureBatch(t *testing.T) {
	truths := [][]float64{{0, 0}, {1, 1}}
	recons := [][]float64{{0, 0}, {0, 0}}
	got := MeasureBatch(truths, recons)
	if math.Abs(got.MSE-0.5) > 1e-12 {
		t.Errorf("MSE = %v, want 0.5", got.MSE)
	}
	perfect := MeasureBatch(truths, truths)
	if !math.IsInf(perfect.PSNR, 1) {
		t.Errorf("perfect PSNR = %v, want +Inf", perfect.PSNR)
	}
	empty := MeasureBatch(nil, nil)
	if empty.MSE != 0 {
		t.Errorf("empty MSE = %v", empty.MSE)
	}
}

func TestDecodeScaledDegenerate(t *testing.T) {
	cfg := hdc.Config{Dim: 500, Features: 10, Levels: 4, Seed: 15}
	enc, _ := hdc.NewScalarEncoder(cfg)
	recon, err := DecodeScaled(enc, make([]float64, cfg.Dim))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range recon {
		if v != 0 {
			t.Errorf("all-zero query should reconstruct to zeros, got %v", v)
		}
	}
}
