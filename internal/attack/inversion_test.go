package attack

import (
	"testing"

	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/hrand"
	"privehd/internal/vecmath"
)

// inversionFixture trains a small scalar-encoded model on two synthetic
// classes with distinct prototypes and returns everything the attacks need.
func inversionFixture(t *testing.T) (*hdc.ScalarEncoder, *hdc.Model, [][]float64) {
	t.Helper()
	cfg := hdc.Config{Dim: 8000, Features: 30, Levels: 10, Seed: 41}
	enc, err := hdc.NewScalarEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := hrand.New(42)
	protos := [][]float64{
		src.NormalVec(cfg.Features, 0.5, 0.15),
		src.NormalVec(cfg.Features, 0.5, 0.15),
	}
	for _, p := range protos {
		for i := range p {
			if p[i] < 0 {
				p[i] = 0
			}
			if p[i] > 1 {
				p[i] = 1
			}
		}
	}
	m := hdc.NewModel(2, cfg.Dim)
	for c, p := range protos {
		for s := 0; s < 12; s++ {
			x := make([]float64, cfg.Features)
			for i := range x {
				x[i] = p[i] + src.Normal(0, 0.03)
				if x[i] < 0 {
					x[i] = 0
				}
				if x[i] > 1 {
					x[i] = 1
				}
			}
			m.Add(c, enc.Encode(x))
		}
	}
	return enc, m, protos
}

func TestClassInversionRecoversPrototypes(t *testing.T) {
	enc, m, protos := inversionFixture(t)
	recons, err := ClassInversion(enc, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(recons) != 2 {
		t.Fatalf("recons = %d", len(recons))
	}
	for c, recon := range recons {
		// The reconstruction approximates the level-quantized class mean;
		// MSE against the prototype must be small and the match must be
		// class-specific.
		own := vecmath.MSE(protos[c], recon)
		other := vecmath.MSE(protos[1-c], recon)
		if own > 0.01 {
			t.Errorf("class %d inversion MSE = %v, want near-exact", c, own)
		}
		if own >= other {
			t.Errorf("class %d inversion matches the wrong prototype (%v vs %v)", c, own, other)
		}
	}
}

func TestClassInversionSkipsEmptyClasses(t *testing.T) {
	cfg := hdc.Config{Dim: 500, Features: 5, Levels: 4, Seed: 43}
	enc, err := hdc.NewScalarEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := hdc.NewModel(2, cfg.Dim)
	m.Add(0, enc.Encode([]float64{1, 0, 1, 0, 1}))
	recons, err := ClassInversion(enc, m)
	if err != nil {
		t.Fatal(err)
	}
	if recons[0] == nil {
		t.Error("populated class should reconstruct")
	}
	if recons[1] != nil {
		t.Error("empty class should be nil")
	}
}

func TestClassInversionDimCheck(t *testing.T) {
	cfg := hdc.Config{Dim: 100, Features: 5, Levels: 4, Seed: 44}
	enc, _ := hdc.NewScalarEncoder(cfg)
	m := hdc.NewModel(1, 50)
	if _, err := ClassInversion(enc, m); err == nil {
		t.Error("expected dimension error")
	}
}

func TestDPNoiseDefeatsClassInversion(t *testing.T) {
	// The point of the paper's training defence: after the Gaussian
	// mechanism, the inverted prototypes are much farther from the truth.
	enc, m, protos := inversionFixture(t)
	clean, err := ClassInversion(enc, m)
	if err != nil {
		t.Fatal(err)
	}
	noisy := m.Clone()
	// Tight budget with the raw sensitivity of this geometry.
	if err := dp.PrivatizeModel(hrand.New(45), noisy, 400, dp.Params{Epsilon: 1, Delta: 1e-5}); err != nil {
		t.Fatal(err)
	}
	private, err := ClassInversion(enc, noisy)
	if err != nil {
		t.Fatal(err)
	}
	for c := range protos {
		before := vecmath.MSE(protos[c], clean[c])
		after := vecmath.MSE(protos[c], private[c])
		if after < 10*before {
			t.Errorf("class %d: DP inversion MSE %v not much worse than clean %v", c, after, before)
		}
	}
}

func TestClassInversionScaled(t *testing.T) {
	enc, m, _ := inversionFixture(t)
	recons, err := ClassInversionScaled(enc, m)
	if err != nil {
		t.Fatal(err)
	}
	for c, recon := range recons {
		if recon == nil {
			t.Fatalf("class %d nil", c)
		}
		for _, v := range recon {
			if v < 0 || v > 1 {
				t.Fatalf("scaled inversion out of [0,1]: %v", v)
			}
		}
	}
}
