package attack

import (
	"fmt"

	"privehd/internal/hdc"
)

// ClassInversion mounts the model-inversion attack implied by §III-A's
// model-privacy discussion: a released class hypervector is the sum of its
// members' encodings (Eq. 3), and the Eq. 10 projection is linear, so
//
//	Decode(C_l) / count_l ≈ average feature vector of class l.
//
// Against an image model this recovers the average class member (for MNIST,
// a readable prototype digit) from nothing but the published model — the
// reason Prive-HD adds calibrated noise before release. The returned slice
// has one reconstruction per class; classes with no bundled members return
// nil entries.
func ClassInversion(enc hdc.BaseProvider, m *hdc.Model) ([][]float64, error) {
	if m.Dim() != enc.Dim() {
		return nil, fmt.Errorf("attack: model dim %d, encoder dim %d", m.Dim(), enc.Dim())
	}
	out := make([][]float64, m.NumClasses())
	for l := 0; l < m.NumClasses(); l++ {
		count := m.Count(l)
		if count <= 0 {
			continue
		}
		recon, err := Decode(enc, m.Class(l))
		if err != nil {
			return nil, err
		}
		for i := range recon {
			recon[i] /= float64(count)
		}
		out[l] = recon
	}
	return out, nil
}

// ClassInversionScaled is ClassInversion followed by per-class min/max
// normalization to [0,1] — the view an adversary without count metadata
// would render (counts only scale the image).
func ClassInversionScaled(enc hdc.BaseProvider, m *hdc.Model) ([][]float64, error) {
	out := make([][]float64, m.NumClasses())
	for l := 0; l < m.NumClasses(); l++ {
		if m.Count(l) <= 0 && isZeroVector(m.Class(l)) {
			continue
		}
		recon, err := DecodeScaled(enc, m.Class(l))
		if err != nil {
			return nil, err
		}
		out[l] = recon
	}
	return out, nil
}

func isZeroVector(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
