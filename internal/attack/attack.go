// Package attack implements the privacy attacks of Prive-HD §III-A: the
// Eq. 9–10 input reconstruction from an encoded hypervector, its extension
// to the level-based (Eq. 2b) encoding, and the model-difference membership
// attack that recovers a training record from two adjacent HD models.
//
// These attacks are what the paper's defences are measured against: the
// PSNR/MSE of the reconstructions (Figs. 2, 6 and 9b) quantify how much
// information an offloaded query or released model actually leaks.
package attack

import (
	"fmt"
	"math"

	"privehd/internal/hdc"
	"privehd/internal/vecmath"
)

// Decode reconstructs the feature-level values from an encoded hypervector
// using the orthogonality of the base hypervectors (paper Eq. 10):
//
//	f(v_m) ≈ (~H · ~B_m) / D_hv
//
// For the scalar (Eq. 2a) encoding the result approximates the level values
// f ∈ [0,1] used at encoding time. The same projection applied to quantized
// or masked hypervectors yields the degraded reconstructions the
// inference-privacy experiments measure. enc must expose its bases.
func Decode(enc hdc.BaseProvider, h []float64) ([]float64, error) {
	if len(h) != enc.Dim() {
		return nil, fmt.Errorf("attack: encoded dim %d, encoder dim %d", len(h), enc.Dim())
	}
	d := float64(enc.Dim())
	out := make([]float64, enc.NumFeatures())
	for m := range out {
		out[m] = vecmath.Dot(h, enc.Base(m)) / d
	}
	return out, nil
}

// DecodeScaled is Decode followed by rescaling the projection to account
// for the norm shrinkage of quantized hypervectors: a bipolar-quantized
// encoding preserves the *direction* of each feature's contribution but not
// its magnitude, so the raw projection underestimates the levels. Scaling
// by ‖H‖-preserving factor alpha = ‖h_q‖·‖h‖ ratios is unavailable to an
// eavesdropper; instead DecodeScaled normalizes the output to [0,1] by its
// own min/max — the best a realistic adversary can do, and what the paper's
// PSNR comparisons imply (images are rendered after normalization).
func DecodeScaled(enc hdc.BaseProvider, h []float64) ([]float64, error) {
	raw, err := Decode(enc, h)
	if err != nil {
		return nil, err
	}
	lo, hi := raw[0], raw[0]
	for _, v := range raw {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		// Degenerate reconstruction: no information survived.
		for i := range raw {
			raw[i] = 0
		}
		return raw, nil
	}
	for i := range raw {
		raw[i] = (raw[i] - lo) / (hi - lo)
	}
	return raw, nil
}

// LevelDecoder reconstructs inputs from level-based (Eq. 2b) encodings.
// The paper notes the Eq. 10 attack "can easily be adjusted to the other HD
// encodings": for Eq. 2b the adversary scores every level ℓ of feature m by
// projecting onto ~L_ℓ ⊙ ~B_m and picks the argmax.
type LevelDecoder struct {
	enc *hdc.LevelEncoder
	// products[m][l] is the precomputed ±1 float product L_l ⊙ B_m.
	products [][][]float64
}

// NewLevelDecoder precomputes the projection vectors for every
// (feature, level) pair. Memory cost is Features×Levels×Dim float64s;
// callers working at full scale should prefer modest Levels.
func NewLevelDecoder(enc *hdc.LevelEncoder) *LevelDecoder {
	products := make([][][]float64, enc.NumFeatures())
	for m := range products {
		base := enc.Base(m)
		products[m] = make([][]float64, enc.Levels())
		for l := range products[m] {
			lvl := enc.LevelVector(l)
			p := make([]float64, enc.Dim())
			for j := range p {
				p[j] = lvl[j] * base[j]
			}
			products[m][l] = p
		}
	}
	return &LevelDecoder{enc: enc, products: products}
}

// Decode returns the most likely level value (in [0,1]) for every feature
// of the encoded hypervector h.
func (d *LevelDecoder) Decode(h []float64) ([]float64, error) {
	if len(h) != d.enc.Dim() {
		return nil, fmt.Errorf("attack: encoded dim %d, encoder dim %d", len(h), d.enc.Dim())
	}
	levels := d.enc.Levels()
	out := make([]float64, d.enc.NumFeatures())
	scores := make([]float64, levels)
	for m := range out {
		for l := 0; l < levels; l++ {
			scores[l] = vecmath.Dot(h, d.products[m][l])
		}
		out[m] = hdc.LevelValue(vecmath.ArgMax(scores), levels)
	}
	return out, nil
}

// ModelDifference mounts the §III-A membership attack: given two models
// trained on adjacent datasets (D2 = D1 + one record), the per-class
// difference of class hypervectors isolates the missing record's encoding,
// which Decode can then invert. It returns the recovered encoding and the
// class whose vectors differ. If the models are identical it returns an
// error.
func ModelDifference(m1, m2 *hdc.Model) (encoding []float64, class int, err error) {
	if m1.NumClasses() != m2.NumClasses() || m1.Dim() != m2.Dim() {
		return nil, 0, fmt.Errorf("attack: model geometries differ: (%d,%d) vs (%d,%d)",
			m1.NumClasses(), m1.Dim(), m2.NumClasses(), m2.Dim())
	}
	bestClass, bestNorm := -1, 0.0
	var bestDiff []float64
	for l := 0; l < m1.NumClasses(); l++ {
		c1, c2 := m1.Class(l), m2.Class(l)
		diff := make([]float64, len(c1))
		for j := range diff {
			diff[j] = c2[j] - c1[j]
		}
		if n := vecmath.Norm2(diff); n > bestNorm {
			bestNorm, bestClass, bestDiff = n, l, diff
		}
	}
	if bestClass < 0 || bestNorm == 0 {
		return nil, 0, fmt.Errorf("attack: models are identical; no record to recover")
	}
	return bestDiff, bestClass, nil
}

// ReconstructionError summarizes an attack's success against one input.
type ReconstructionError struct {
	// MSE is the mean squared error between the true (normalized) features
	// and the reconstruction.
	MSE float64
	// PSNR is the corresponding peak signal-to-noise ratio in dB with peak
	// 1.0 (features are normalized); the paper reports ≈23.6 dB for plain
	// encodings and ≈13 dB after quantization+masking.
	PSNR float64
}

// Measure computes reconstruction metrics for a single input.
func Measure(truth, recon []float64) ReconstructionError {
	return ReconstructionError{
		MSE:  vecmath.MSE(truth, recon),
		PSNR: vecmath.PSNR(truth, recon, 1),
	}
}

// MeasureBatch averages reconstruction MSE and PSNR over a batch; PSNR is
// computed from the averaged MSE (matching how image papers aggregate).
func MeasureBatch(truths, recons [][]float64) ReconstructionError {
	if len(truths) != len(recons) {
		panic("attack: MeasureBatch length mismatch")
	}
	if len(truths) == 0 {
		return ReconstructionError{}
	}
	var mse float64
	for i := range truths {
		mse += vecmath.MSE(truths[i], recons[i])
	}
	mse /= float64(len(truths))
	out := ReconstructionError{MSE: mse}
	if mse == 0 {
		out.PSNR = math.Inf(1)
	} else {
		out.PSNR = 10 * math.Log10(1/mse)
	}
	return out
}
