package attack

import (
	"fmt"
	"io"
	"strings"
)

// RenderASCII renders a normalized [0,1] image of the given width as ASCII
// art, darkest-to-lightest — the terminal stand-in for the paper's Fig. 2
// "original and retrieved handwritten digits". Values clamp to [0,1].
func RenderASCII(pixels []float64, width int) string {
	if width <= 0 || len(pixels)%width != 0 {
		return fmt.Sprintf("<unrenderable: %d pixels, width %d>", len(pixels), width)
	}
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	for i, p := range pixels {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		idx := int(p * float64(len(ramp)-1))
		b.WriteByte(ramp[idx])
		if (i+1)%width == 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// WritePGM writes a normalized [0,1] image as a binary 8-bit PGM, the
// simplest portable grayscale format — handy for inspecting
// reconstructions outside the terminal. Values clamp to [0,1].
func WritePGM(w io.Writer, pixels []float64, width, height int) error {
	if width <= 0 || height <= 0 || len(pixels) != width*height {
		return fmt.Errorf("attack: WritePGM geometry %dx%d does not match %d pixels",
			width, height, len(pixels))
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return fmt.Errorf("attack: writing PGM header: %w", err)
	}
	buf := make([]byte, len(pixels))
	for i, p := range pixels {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		buf[i] = byte(p*255 + 0.5)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("attack: writing PGM pixels: %w", err)
	}
	return nil
}

// SideBySide joins two equal-height ASCII renderings with a gutter, for
// original-vs-reconstruction terminal output.
func SideBySide(left, right, gutter string) string {
	ls := strings.Split(strings.TrimRight(left, "\n"), "\n")
	rs := strings.Split(strings.TrimRight(right, "\n"), "\n")
	n := len(ls)
	if len(rs) > n {
		n = len(rs)
	}
	width := 0
	for _, l := range ls {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		var l, r string
		if i < len(ls) {
			l = ls[i]
		}
		if i < len(rs) {
			r = rs[i]
		}
		b.WriteString(l)
		b.WriteString(strings.Repeat(" ", width-len(l)))
		b.WriteString(gutter)
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}
