package attack

import (
	"testing"

	"privehd/internal/hdc"
	"privehd/internal/hrand"
)

func BenchmarkDecode617x10k(b *testing.B) {
	// The Eq. 10 attack at the paper's ISOLET geometry.
	enc, err := hdc.NewScalarEncoder(hdc.Config{Dim: 10000, Features: 617, Levels: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	src := hrand.New(300)
	x := make([]float64, 617)
	for i := range x {
		x[i] = src.Float64()
	}
	h := enc.Encode(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelDifference(b *testing.B) {
	src := hrand.New(301)
	m1 := hdc.NewModel(26, 10000)
	for l := 0; l < 26; l++ {
		m1.Add(l, src.NormalVec(10000, 0, 20))
	}
	m2 := m1.Clone()
	m2.Add(7, src.NormalVec(10000, 0, 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ModelDifference(m1, m2); err != nil {
			b.Fatal(err)
		}
	}
}
