package attack

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderASCII(t *testing.T) {
	img := []float64{0, 1, 0.5, 0}
	got := RenderASCII(img, 2)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if lines[0][0] != ' ' {
		t.Errorf("zero pixel rendered as %q, want space", lines[0][0])
	}
	if lines[0][1] != '@' {
		t.Errorf("one pixel rendered as %q, want '@'", lines[0][1])
	}
}

func TestRenderASCIIClamps(t *testing.T) {
	got := RenderASCII([]float64{-3, 7}, 2)
	if got[0] != ' ' || got[1] != '@' {
		t.Errorf("clamping failed: %q", got)
	}
}

func TestRenderASCIIBadGeometry(t *testing.T) {
	got := RenderASCII([]float64{1, 2, 3}, 2)
	if !strings.Contains(got, "unrenderable") {
		t.Errorf("bad geometry should yield a marker, got %q", got)
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, []float64{0, 0.5, 1, 0.25}, 2, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n2 2\n255\n")) {
		t.Errorf("bad header: %q", out[:12])
	}
	pix := out[len(out)-4:]
	if pix[0] != 0 || pix[2] != 255 {
		t.Errorf("pixels = %v", pix)
	}
}

func TestWritePGMGeometryError(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, []float64{1}, 2, 2); err == nil {
		t.Error("expected geometry error")
	}
}

func TestSideBySide(t *testing.T) {
	got := SideBySide("ab\ncd\n", "xy\nzw\n", " | ")
	want := "ab | xy\ncd | zw\n"
	if got != want {
		t.Errorf("SideBySide = %q, want %q", got, want)
	}
}

func TestSideBySideUneven(t *testing.T) {
	got := SideBySide("ab\n", "xy\nzw\n", "|")
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if !strings.HasSuffix(lines[1], "zw") {
		t.Errorf("second line = %q", lines[1])
	}
}
