// Package par is the one shared fan-out primitive for the data-parallel
// hot paths: workers claim work off an atomic cursor until it runs dry.
// Encoding batches, prediction batches and edge obfuscation batches all
// dispatch through it, so the clamping and claiming rules live in exactly
// one place.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), spread over up to `workers`
// goroutines (workers <= 1, or n < 2, runs inline). Items are claimed one
// at a time off an atomic cursor, so uneven per-item cost self-balances.
// fn must be safe for concurrent calls with distinct i.
func ForEach(n, workers int, fn func(i int)) {
	ForEachChunk(n, 1, workers, func(start, end int) {
		for i := start; i < end; i++ {
			fn(i)
		}
	})
}

// ForEachChunk covers [0, n) with half-open chunks [start, end) of the
// given size, spread over up to `workers` goroutines claiming chunks off
// an atomic cursor. The final chunk is truncated to n. Chunking amortizes
// per-claim overhead when fn has a cheaper batch form (e.g. the encoder's
// multi-row kernel).
func ForEachChunk(n, chunk, workers int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	tasks := (n + chunk - 1) / chunk
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for start := 0; start < n; start += chunk {
			fn(start, min(start+chunk, n))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := (int(next.Add(1)) - 1) * chunk
				if start >= n {
					return
				}
				fn(start, min(start+chunk, n))
			}
		}()
	}
	wg.Wait()
}
