package par_test

import (
	"sync/atomic"
	"testing"

	"privehd/internal/par"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 3, 16, 2000} {
			hits := make([]int32, n)
			par.ForEach(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForEachChunkCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		for _, chunk := range []int{0, 1, 8, 200} {
			for _, workers := range []int{1, 4} {
				hits := make([]int32, n)
				par.ForEachChunk(n, chunk, workers, func(start, end int) {
					if start >= end || end > n {
						t.Errorf("n=%d chunk=%d: bad range [%d,%d)", n, chunk, start, end)
					}
					for i := start; i < end; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d chunk=%d workers=%d: index %d visited %d times", n, chunk, workers, i, h)
					}
				}
			}
		}
	}
}
