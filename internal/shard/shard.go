// Package shard implements the scatter–gather coordinator that makes a
// fleet of partial replicas answer like one whole model.
//
// A replica may serve a slice of a logical model — a dimension range of
// every class plane, a class range, or both (see registry.ShardInfo). The
// coordinator dials every address, reads each replica's shard descriptor
// from its v5 ServerHello, groups replicas serving the same slice into a
// failover cluster, and verifies the groups tile the full model exactly.
// A prediction then scatters the matching slice of the packed query to
// every group, gathers exact integer partial dot products and per-class
// Σv², reduces them, and takes the argmax over whole-model scores.
//
// The reduction is bit-identical to whole-model serving: partial dots are
// int64 sums of int8×(small integer) products, so summing them across
// dimension shards is exact and order-free; Σv² per class is an exact
// integer below 2⁵³ on every partial-capable engine, so the float64 sum
// across shards is exact too, and math.Sqrt of an identical float64 is
// identical. Class sharding needs no cross-shard arithmetic at all — each
// class's score comes entirely from the one column of groups holding it —
// so the grid case composes from the same reduction.
//
// Each group is a cluster.Cluster, so a replica dying mid-gather is
// retried on that shard's surviving replicas only; the other shards'
// partials are never re-fetched. Servers announce graceful shutdown with
// a v5 GoAway push, which the pools underneath translate into routing new
// work elsewhere before the TCP half-close lands.
package shard

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"privehd/internal/cluster"
	"privehd/internal/offload"
	"privehd/internal/registry"
	"privehd/internal/trace"
	"privehd/internal/vecmath"
)

// ErrBadTiling reports a replica set whose shard descriptors do not tile
// the full model exactly (gaps, overlaps, or disagreeing geometry). It is
// a configuration verdict, not a transport failure: retrying elsewhere
// cannot fix it.
var ErrBadTiling = errors.New("shard: replicas do not tile the full model")

// Config configures a Coordinator.
type Config struct {
	// Network and Addrs locate the replicas ("tcp", one "host:port" each).
	// Replicas serving the same slice become one failover group.
	Network string
	Addrs   []string
	// Model names the served model to bind to (empty for the default).
	Model string
	// Pool is the per-replica pool template (Network/Addr/Hello are
	// overridden per replica).
	Pool cluster.PoolConfig
	// Policy selects the per-group balancing strategy.
	Policy cluster.Policy
	// ProbeInterval / ProbeTimeout configure per-group health probing
	// (cluster.ClusterConfig semantics).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Hedge opts every shard group into hedged partial-score gathers
	// (cluster.ClusterConfig.Hedge semantics): the gather is only as fast
	// as its slowest shard, so hedging stragglers inside each group is
	// where tail latency actually goes to die. Nil disables.
	Hedge *cluster.HedgePolicy
	// DialTimeout bounds each discovery dial (default 5s).
	DialTimeout time.Duration
	// Logger receives structured health events. Nil discards them.
	Logger *slog.Logger
}

// group is one shard of the model: the slice descriptor and the failover
// cluster of replicas serving it.
type group struct {
	info registry.ShardInfo
	key  string // info.String(), the metric label
	cl   *cluster.Cluster
}

// Coordinator scatters packed queries across shard groups and gathers
// whole-model predictions. All methods are safe for concurrent use.
type Coordinator struct {
	cfg    Config
	hello  offload.ServerHello // synthesized whole-model view
	groups []*group
}

// New discovers the fleet's shard layout and returns a coordinator over
// it. Every address must answer a v5 handshake for the configured model;
// replicas without a shard descriptor count as whole-model replicas (a
// one-group coordinator degenerates into a plain failover cluster that
// happens to score via partials). The context bounds discovery.
func New(ctx context.Context, cfg Config) (*Coordinator, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("shard: no replica addresses")
	}
	if cfg.Network == "" {
		cfg.Network = "tcp"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	hellos := make([]offload.ServerHello, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		h, err := discover(ctx, cfg, addr)
		if err != nil {
			return nil, fmt.Errorf("shard: discovering %s: %w", addr, err)
		}
		hellos[i] = h
	}
	co := &Coordinator{cfg: cfg}
	byKey := make(map[string]*group)
	var addrsByKey = make(map[string][]string)
	for i, h := range hellos {
		info := descriptor(h)
		key := info.String()
		if g, ok := byKey[key]; ok {
			if g.info != info {
				// Same rendering can't disagree, but keep the invariant
				// explicit for future descriptor fields.
				return nil, fmt.Errorf("%w: %s advertises conflicting descriptor %v", ErrBadTiling, cfg.Addrs[i], info)
			}
		} else {
			byKey[key] = &group{info: info, key: key}
			co.groups = append(co.groups, byKey[key])
		}
		addrsByKey[key] = append(addrsByKey[key], cfg.Addrs[i])
	}
	if err := checkTiling(co.groups); err != nil {
		return nil, err
	}
	co.hello = wholeHello(hellos[0])
	for _, g := range co.groups {
		cl, err := cluster.NewCluster(cluster.ClusterConfig{
			Network:       cfg.Network,
			Addrs:         addrsByKey[g.key],
			Hello:         offload.Hello{Model: cfg.Model},
			Pool:          cfg.Pool,
			Policy:        cfg.Policy,
			ProbeInterval: cfg.ProbeInterval,
			ProbeTimeout:  cfg.ProbeTimeout,
			Hedge:         cfg.Hedge,
			Logger:        cfg.Logger,
		})
		if err != nil {
			co.Close()
			return nil, err
		}
		g.cl = cl
	}
	return co, nil
}

// discover dials one address, performs the handshake, and returns the
// accepted ServerHello. The connection is closed immediately — the real
// traffic goes through the per-group pools.
func discover(ctx context.Context, cfg Config, addr string) (offload.ServerHello, error) {
	c, err := offload.Dial(ctx, cfg.Network, addr, offload.Hello{Model: cfg.Model})
	if err != nil {
		return offload.ServerHello{}, err
	}
	h := c.ServerHello()
	c.Close()
	return h, nil
}

// descriptor normalizes a replica's advertised shard: replicas serving the
// whole model (pre-sharding deployments, or a v5 server with a whole
// entry) get the full-cover descriptor so grouping and tiling treat every
// replica uniformly.
func descriptor(h offload.ServerHello) registry.ShardInfo {
	if h.Shard != nil {
		return *h.Shard
	}
	return registry.ShardInfo{
		DimLen:      h.Dim,
		ClassCount:  h.Classes,
		FullDim:     h.Dim,
		FullClasses: h.Classes,
	}
}

// checkTiling verifies the groups' descriptors partition the full model
// exactly: identical full geometry, pairwise disjoint rectangles, and
// total area equal to FullDim×FullClasses. Disjoint + in-bounds + matching
// area is a partition, so no per-cell scan is needed.
func checkTiling(groups []*group) error {
	full := groups[0].info
	area := 0
	for i, g := range groups {
		in := g.info
		if in.FullDim != full.FullDim || in.FullClasses != full.FullClasses {
			return fmt.Errorf("%w: replicas disagree on full geometry (%d×%d vs %d×%d)",
				ErrBadTiling, in.FullDim, in.FullClasses, full.FullDim, full.FullClasses)
		}
		if err := (&in).Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadTiling, err)
		}
		area += in.DimLen * in.ClassCount
		for _, o := range groups[:i] {
			if in.DimOffset < o.info.DimOffset+o.info.DimLen &&
				o.info.DimOffset < in.DimOffset+in.DimLen &&
				in.ClassOffset < o.info.ClassOffset+o.info.ClassCount &&
				o.info.ClassOffset < in.ClassOffset+in.ClassCount {
				return fmt.Errorf("%w: %s overlaps %s", ErrBadTiling, in.String(), o.info.String())
			}
		}
	}
	if area != full.FullDim*full.FullClasses {
		return fmt.Errorf("%w: shards cover %d of %d model cells",
			ErrBadTiling, area, full.FullDim*full.FullClasses)
	}
	return nil
}

// wholeHello synthesizes the whole-model handshake the coordinator
// presents upward: full geometry with the (shard-independent) encoder
// setup every replica shares, so edges auto-configure against a sharded
// fleet exactly as against one server.
func wholeHello(h offload.ServerHello) offload.ServerHello {
	if h.Shard != nil {
		h.Dim = h.Shard.FullDim
		h.Classes = h.Shard.FullClasses
		h.Shard = nil
	}
	return h
}

// Hello returns the synthesized whole-model handshake (full geometry plus
// the fleet's shared public encoder setup).
func (co *Coordinator) Hello() offload.ServerHello { return co.hello }

// Dim returns the full logical model dimensionality.
func (co *Coordinator) Dim() int { return co.hello.Dim }

// Classes returns the full logical model class count.
func (co *Coordinator) Classes() int { return co.hello.Classes }

// Groups returns the shard descriptors, one per failover group.
func (co *Coordinator) Groups() []registry.ShardInfo {
	out := make([]registry.ShardInfo, len(co.groups))
	for i, g := range co.groups {
		out[i] = g.info
	}
	return out
}

// gatherResult is one group's partial answer for a batch.
type gatherResult struct {
	info     registry.ShardInfo
	partials [][]int64 // [query][local class]
	normSq   []float64 // [local class]
}

// scatter fans the packed batch across every shard group and gathers the
// partial answers. Each group retries internally across its own replicas
// (cluster failover); a group that exhausts its replicas fails the whole
// gather. The span's gather stage records the slowest group's round trip.
func (co *Coordinator) scatter(ctx context.Context, packed [][]int8, span *trace.Span) ([]gatherResult, error) {
	results := make([]gatherResult, len(co.groups))
	errs := make([]error, len(co.groups))
	var wg sync.WaitGroup
	for i, g := range co.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			sub := make([][]int8, len(packed))
			for q, p := range packed {
				sub[q] = p[g.info.DimOffset : g.info.DimOffset+g.info.DimLen]
			}
			t0 := time.Now()
			// Hedged gather: each attempt accumulates into private state
			// and only the winner's commit publishes into results[i], so
			// a primary and its hedge can never race on the shared slot.
			// The attempt counter is deliberately shared — it counts every
			// partial-score try this shard burned, hedged or not.
			var attempts atomic.Int64
			err := g.cl.DoHedged(ctx, span, func() (func(context.Context, *cluster.Pool) error, func()) {
				var res gatherResult
				op := func(actx context.Context, p *cluster.Pool) error {
					attempts.Add(1)
					return p.Do(actx, func(c *offload.Client) error {
						partials, normSq, err := c.PartialScoresContext(actx, sub)
						if err != nil {
							return err
						}
						res = gatherResult{info: g.info, partials: partials, normSq: normSq}
						return nil
					})
				}
				commit := func() { results[i] = res }
				return op, commit
			})
			d := time.Since(t0)
			span.ObserveMax(trace.StageGather, d)
			if err != nil {
				smGatherErrors.With(g.key).Inc()
				errs[i] = fmt.Errorf("shard %s: %w", g.key, err)
			} else {
				smGathers.With(g.key).Inc()
				smGatherSeconds.With(g.key).Observe(d.Seconds())
			}
			if n := attempts.Load(); n > 1 {
				smPartialRetries.With(g.key).Add(uint64(n - 1))
			}
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// reduce folds the groups' partial answers into whole-model scores for
// query q of the gathered batch, writing into scores (FullClasses long).
// Exactness: int64 dot sums and sub-2⁵³ integer Σv² sums are associative,
// so the fold order across groups cannot change a single bit.
func reduce(results []gatherResult, q int, dots []int64, normSq, scores []float64) []float64 {
	for i := range dots {
		dots[i] = 0
		normSq[i] = 0
	}
	for _, r := range results {
		off := r.info.ClassOffset
		for l, d := range r.partials[q] {
			dots[off+l] += d
			normSq[off+l] += r.normSq[l]
		}
	}
	for l := range scores {
		n := normSq[l]
		if n == 0 {
			scores[l] = math.Inf(-1)
			continue
		}
		scores[l] = float64(dots[l]) / math.Sqrt(n)
	}
	return scores
}

// PredictPacked classifies one packed query against the sharded fleet,
// returning the whole-model label and per-class scores.
func (co *Coordinator) PredictPacked(ctx context.Context, packed []int8) (int, []float64, error) {
	labels, scores, err := co.PredictPackedBatch(ctx, [][]int8{packed})
	if err != nil {
		return 0, nil, err
	}
	return labels[0], scores[0], nil
}

// PredictPackedBatch classifies a batch of packed queries against the
// sharded fleet. Every query must be FullDim long.
func (co *Coordinator) PredictPackedBatch(ctx context.Context, packed [][]int8) ([]int, [][]float64, error) {
	if len(packed) == 0 {
		return nil, nil, nil
	}
	for i, p := range packed {
		if len(p) != co.hello.Dim {
			return nil, nil, fmt.Errorf("shard: query %d has dim %d, model dim %d", i, len(p), co.hello.Dim)
		}
	}
	span := trace.Start()
	t0 := time.Now()
	results, err := co.scatter(ctx, packed, span)
	if err != nil {
		co.record(span, t0, len(packed), err)
		return nil, nil, err
	}
	classes := co.hello.Classes
	labels := make([]int, len(packed))
	scores := make([][]float64, len(packed))
	dots := make([]int64, classes)
	nsq := make([]float64, classes)
	for q := range packed {
		scores[q] = reduce(results, q, dots, nsq, make([]float64, classes))
		labels[q] = vecmath.ArgMax(scores[q])
	}
	co.record(span, t0, len(packed), nil)
	return labels, scores, nil
}

// record closes out a sampled coordinator span into the client-side
// flight recorder.
func (co *Coordinator) record(span *trace.Span, t0 time.Time, queries int, err error) {
	if span == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		outcome = err.Error()
	}
	trace.RecordClient(trace.Entry{
		TraceID: span.ID(),
		Time:    time.Now(),
		Side:    "client",
		Model:   co.hello.Model,
		Op:      "sharded-predict",
		Outcome: outcome,
		Queries: queries,
		TotalNs: int64(time.Since(t0)),
		Local:   span.Breakdown(),
	})
	span.Free()
}

// ListModels returns the registry listing of the first shard group that
// answers — model identity is fleet-wide shared setup, so any group's
// listing describes the fleet (geometry fields reflect that replica's
// slice).
func (co *Coordinator) ListModels(ctx context.Context) ([]offload.ModelListing, error) {
	return co.groups[0].cl.ListModels(ctx)
}

// Close releases every shard group's connections.
func (co *Coordinator) Close() error {
	var first error
	for _, g := range co.groups {
		if g.cl == nil {
			continue
		}
		if err := g.cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
