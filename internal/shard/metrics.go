package shard

import (
	"privehd/internal/metrics"
)

// Coordinator-side gather instrumentation on the process-global registry,
// labelled by shard descriptor so a straggling or flapping slice is
// visible per shard, not averaged away across the fleet.
var (
	smGathers = metrics.Default.NewCounterVec(
		"privehd_shard_gathers_total",
		"Partial-score gathers answered, by shard descriptor. One logical prediction bumps every shard's counter once.",
		"shard")
	smGatherSeconds = metrics.Default.NewHistogramVec(
		"privehd_shard_gather_seconds",
		"Round-trip latency of one shard's partial-score gather (including its internal failover retries), by shard descriptor.",
		nil, "shard")
	smGatherErrors = metrics.Default.NewCounterVec(
		"privehd_shard_gather_errors_total",
		"Gathers that failed after exhausting the shard's replicas, by shard descriptor.",
		"shard")
	smPartialRetries = metrics.Default.NewCounterVec(
		"privehd_shard_partial_retries_total",
		"Partial-score calls re-issued to another replica of the same shard after a failure — only the missing shard is retried, never the whole scatter.",
		"shard")
)
