package metrics

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sync"
)

// goRuntimeSamples are the runtime/metrics series the collector exposes,
// chosen for the questions a serving operator actually asks: is the
// process leaking goroutines or heap, is GC eating the latency budget,
// and is the scheduler keeping up.
var goRuntimeSamples = []struct {
	src  string // runtime/metrics name
	name string // exported Prometheus name
	typ  string // counter | gauge | quantiles
	help string
}{
	{"/sched/goroutines:goroutines", "privehd_go_goroutines", "gauge",
		"Number of live goroutines."},
	{"/memory/classes/heap/objects:bytes", "privehd_go_heap_objects_bytes", "gauge",
		"Bytes of heap memory occupied by live and dead objects."},
	{"/gc/heap/goal:bytes", "privehd_go_gc_heap_goal_bytes", "gauge",
		"Heap size target of the current GC cycle."},
	{"/gc/cycles/total:gc-cycles", "privehd_go_gc_cycles_total", "counter",
		"Completed GC cycles since process start."},
	{"/gc/pauses:seconds", "privehd_go_gc_pause_seconds", "quantiles",
		"Distribution of stop-the-world GC pause latencies."},
	{"/sched/latencies:seconds", "privehd_go_sched_latency_seconds", "quantiles",
		"Distribution of time goroutines spend runnable before running."},
}

// quantileLevels are the quantiles exported for distribution-shaped
// runtime series.
var quantileLevels = []float64{0.5, 0.9, 0.99}

// goRuntime is a family that samples runtime/metrics at scrape time —
// nothing runs between scrapes, so the collector costs nothing while
// nobody is looking.
type goRuntime struct {
	samples []metrics.Sample
}

// NewGoRuntime registers the Go runtime collector on the registry.
// Registering it twice on one registry panics like any duplicate family;
// use EnsureGoRuntime for the Default registry.
func (r *Registry) NewGoRuntime() {
	g := &goRuntime{samples: make([]metrics.Sample, len(goRuntimeSamples))}
	for i := range goRuntimeSamples {
		g.samples[i].Name = goRuntimeSamples[i].src
	}
	r.register(g)
}

var goRuntimeOnce sync.Once

// EnsureGoRuntime registers the Go runtime collector on the Default
// registry, once per process. Every metrics-serving entry point calls it,
// so whichever initializes first wins and the rest are no-ops.
func EnsureGoRuntime() {
	goRuntimeOnce.Do(func() { Default.NewGoRuntime() })
}

// name returns a synthetic family key; the real series names are the
// per-sample exported names.
func (g *goRuntime) name() string { return "privehd_go_runtime" }

func (g *goRuntime) write(w io.Writer, om bool) error {
	metrics.Read(g.samples)
	for i, def := range goRuntimeSamples {
		s := g.samples[i]
		if s.Value.Kind() == metrics.KindBad {
			continue // series not present on this Go version
		}
		switch def.typ {
		case "quantiles":
			if s.Value.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			if err := writeRuntimeQuantiles(w, def.name, def.help, s.Value.Float64Histogram()); err != nil {
				return err
			}
		default:
			v, ok := runtimeScalar(s.Value)
			if !ok {
				continue
			}
			d := desc{fqName: def.name, help: def.help, typ: def.typ}
			if err := d.header(w, om); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", def.name, formatFloat(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// runtimeScalar converts a scalar runtime/metrics value to float64.
func runtimeScalar(v metrics.Value) (float64, bool) {
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64()), true
	case metrics.KindFloat64:
		return v.Float64(), true
	}
	return 0, false
}

// writeRuntimeQuantiles renders a runtime Float64Histogram as a summary:
// quantile series plus a _count. Quantiles are estimated from the
// histogram's bucket boundaries (upper bound of the bucket the quantile
// falls in), which is as precise as the runtime's own bucketing.
func writeRuntimeQuantiles(w io.Writer, name, help string, h *metrics.Float64Histogram) error {
	d := desc{fqName: name, help: help, typ: "summary"}
	if err := d.header(w, false); err != nil {
		return err
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	for _, q := range quantileLevels {
		if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %s\n",
			name, formatFloat(q), formatFloat(histQuantile(h, total, q))); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, total)
	return err
}

// histQuantile walks the histogram's cumulative counts to the bucket
// containing quantile q and returns that bucket's upper bound.
func histQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Buckets[i+1] is the upper bound of Counts[i].
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				return h.Buckets[i] // fall back to the finite lower bound
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
