package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Ops so far.")
	g := r.NewGauge("test_conns", "Open conns.")
	c.Add(41)
	c.Inc()
	g.Set(7)
	g.Add(2)
	g.Dec()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Ops so far.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 42\n",
		"# TYPE test_conns gauge\n",
		"test_conns 8\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestVecExpositionSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_queries_total", "Per-model.", "model")
	cv.With("zeta").Add(3)
	cv.With("alpha").Add(1)
	cv.With(`we"ird\nm`).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia := strings.Index(out, `test_queries_total{model="alpha"} 1`)
	iz := strings.Index(out, `test_queries_total{model="zeta"} 3`)
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("children missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, `model="we\"ird\\nm"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}

	cv.Delete("alpha")
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "alpha") {
		t.Errorf("deleted child still exposed:\n%s", b.String())
	}
}

func TestVecMultiLabelIdentity(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_events_total", "By key pair.", "a", "b")
	cv.With("x", "y").Inc()
	cv.With("x", "y").Inc()
	cv.With("y", "x").Inc()
	if got := cv.With("x", "y").Value(); got != 2 {
		t.Errorf("With(x,y) = %d, want 2", got)
	}
	if got := cv.With("y", "x").Value(); got != 1 {
		t.Errorf("With(y,x) = %d, want 1", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("Sum = %g, want 5.605", h.Sum())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_sum 5.605",
		"test_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramVecBuckets(t *testing.T) {
	r := NewRegistry()
	hv := r.NewHistogramVec("test_op_seconds", "Per-op latency.", []float64{1, 2}, "op")
	hv.With("a").Observe(1.5)
	hv.With("a").Observe(0.5)
	hv.With("b").Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_op_seconds_bucket{op="a",le="1"} 1`,
		`test_op_seconds_bucket{op="a",le="2"} 2`,
		`test_op_seconds_bucket{op="a",le="+Inf"} 2`,
		`test_op_seconds_count{op="a"} 2`,
		`test_op_seconds_bucket{op="b",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 3)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if len(DefaultLatencyBuckets) != 18 || DefaultLatencyBuckets[0] != 50e-6 {
		t.Fatalf("DefaultLatencyBuckets changed shape: %v", DefaultLatencyBuckets)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "y")
}

// TestConcurrentWriters hammers every metric type from many goroutines
// while scrapes run, then checks exact totals — the -race companion to
// the lock-free claims.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cw_total", "x")
	g := r.NewGauge("cw_gauge", "x")
	h := r.NewHistogram("cw_seconds", "x", []float64{0.5, 1})
	cv := r.NewCounterVec("cw_by_model_total", "x", "model")
	hv := r.NewHistogramVec("cw_op_seconds", "x", []float64{1}, "op")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := string(rune('a' + w%2))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				cv.With(model).Inc()
				hv.With("classify").Observe(2)
			}
		}(w)
	}
	// Concurrent scrapes must not disturb the writers.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	total := uint64(workers * perWorker)
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if uint64(g.Value()) != total {
		t.Errorf("gauge = %d, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	if math.Abs(h.Sum()-0.25*float64(total)) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), 0.25*float64(total))
	}
	if got := cv.With("a").Value() + cv.With("b").Value(); got != total {
		t.Errorf("counter vec total = %d, want %d", got, total)
	}
	if hv.With("classify").Count() != total {
		t.Errorf("histogram vec count = %d, want %d", hv.With("classify").Count(), total)
	}
}

// TestHotPathZeroAlloc asserts the contract the serving layers rely on:
// observing existing metrics — including a single-label Vec child lookup —
// allocates nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("za_total", "x")
	g := r.NewGauge("za_gauge", "x")
	h := r.NewHistogram("za_seconds", "x", nil)
	cv := r.NewCounterVec("za_by_model_total", "x", "model")
	hv := r.NewHistogramVec("za_op_seconds", "x", nil, "op")
	cv.With("default").Inc() // create children outside the measured loop
	hv.With("classify").Observe(0.001)

	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(5)
		g.Add(-1)
		h.Observe(0.00017)
		h.ObserveSince(time.Now())
		cv.With("default").Inc()
		hv.With("classify").Observe(0.002)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkHistogramObserve is the gated hot-path figure: one latency
// observation including the Vec child lookup the server does per frame.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("bench_seconds", "x", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

// BenchmarkVecObserve measures the per-frame instrumentation pattern:
// resolve a single-label child and observe on it.
func BenchmarkVecObserve(b *testing.B) {
	r := NewRegistry()
	hv := r.NewHistogramVec("bench_op_seconds", "x", nil, "op")
	cv := r.NewCounterVec("bench_ops_total", "x", "op")
	hv.With("classify").Observe(1)
	cv.With("classify").Inc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.With("classify").Inc()
		hv.With("classify").Observe(0.00042)
	}
}

// BenchmarkHistogramObserveParallel shows contention behavior: many
// goroutines on one histogram, the worst case for the sum CAS loop.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("bench_par_seconds", "x", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00042)
		}
	})
}
