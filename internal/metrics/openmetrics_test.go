package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOpenMetricsNegotiation(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_ops_total", "Ops so far.").Add(42)
	h := r.Handler()

	// Plain scrape: Prometheus text format, no terminator, full counter
	// name in the metadata.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("plain scrape Content-Type = %q", ct)
	}
	plain := rec.Body.String()
	if strings.Contains(plain, "# EOF") {
		t.Errorf("plain exposition carries the OpenMetrics terminator:\n%s", plain)
	}
	if !strings.Contains(plain, "# TYPE test_ops_total counter\n") {
		t.Errorf("plain exposition missing full counter TYPE line:\n%s", plain)
	}

	// OpenMetrics-negotiated scrape: versioned content type, "# EOF"
	// terminator, counter metadata without the _total suffix but samples
	// with it.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != openMetricsContentType {
		t.Errorf("OpenMetrics scrape Content-Type = %q, want %q", ct, openMetricsContentType)
	}
	om := rec.Body.String()
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Errorf("OpenMetrics exposition not terminated by # EOF:\n%s", om)
	}
	for _, want := range []string{
		"# TYPE test_ops counter\n",
		"test_ops_total 42\n",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics exposition missing %q in:\n%s", want, om)
		}
	}
	if strings.Contains(om, "# TYPE test_ops_total") {
		t.Errorf("OpenMetrics counter metadata kept the _total suffix:\n%s", om)
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.ObserveExemplar(0.05, "00f1e2d3c4b5a697")
	h.ObserveExemplar(5, "1111111111111111")

	// The Prometheus text format has no exemplar syntax; suffixes must
	// only appear on an OpenMetrics exposition.
	var plain strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "trace_id") {
		t.Errorf("plain exposition leaks exemplars:\n%s", plain.String())
	}

	var om strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 2 # {trace_id="00f1e2d3c4b5a697"} 0.05`,
		`test_latency_seconds_bucket{le="+Inf"} 3 # {trace_id="1111111111111111"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics exposition missing %q in:\n%s", want, out)
		}
	}
	// The 0.01 bucket saw only a plain Observe: no exemplar on its line.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="0.01"`) && strings.Contains(line, "trace_id") {
			t.Errorf("bucket without exemplar grew one: %s", line)
		}
	}

	// Exemplars count and sum like plain observations.
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got < 5.054 || got > 5.056 {
		t.Errorf("Sum = %g, want 5.055", got)
	}
}

func TestGoRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	r.NewGoRuntime()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE privehd_go_goroutines gauge\n",
		"privehd_go_goroutines ",
		"# TYPE privehd_go_gc_cycles_total counter\n",
		"# TYPE privehd_go_gc_pause_seconds summary\n",
		`privehd_go_sched_latency_seconds{quantile="0.99"}`,
		"privehd_go_sched_latency_seconds_count ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestEnsureGoRuntimeIdempotent(t *testing.T) {
	// Every metrics-serving entry point calls this; a second call must not
	// panic with a duplicate registration.
	EnsureGoRuntime()
	EnsureGoRuntime()
}
