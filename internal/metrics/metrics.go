// Package metrics is a dependency-free metrics core for the serving
// stack: atomic counters, gauges and fixed-bucket histograms, grouped in a
// Registry that exposes them in the Prometheus text format (version
// 0.0.4), so any standard scraper can read a privehd deployment without
// this module importing a client library.
//
// The design rule is that the serving hot path must not pay for being
// observed: every write operation — Counter.Add, Gauge.Set,
// Histogram.Observe, and a Vec child lookup with one label value — is
// lock-free and allocation-free (asserted by tests with
// testing.AllocsPerRun and gated benchmarks). All the formatting cost
// lives on the scrape path, which runs at human frequency.
//
// Metrics come in two shapes: plain (one time series) and Vec (a family of
// children keyed by label values, created on first use). Hot paths that
// observe the same child repeatedly should call With once and keep the
// returned pointer; With itself is still cheap enough — an RWMutex read
// lock and one map read — for per-request use with a single label.
//
// A process-wide Default registry is what the serving layers record into
// and what privehd.ServeMetrics and the admin plane's GET /metrics expose;
// independent Registry instances exist for tests.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry the serving layers record into and
// the one MetricsHandler/ServeMetrics expose.
var Default = NewRegistry()

// DefaultLatencyBuckets covers serving latencies from 50µs to ~6.5s in
// ×2 steps — wide enough for a loopback integer-domain classify (tens of
// microseconds) and a cross-region round trip on the same histogram.
var DefaultLatencyBuckets = ExpBuckets(50e-6, 2, 18)

// ExpBuckets returns count upper bounds starting at start and growing by
// factor: the usual shape for latency histograms, where resolution should
// be relative, not absolute.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// family is one registered metric: a name, metadata, and the ability to
// write its current time series. The om flag selects the OpenMetrics
// dialect (exemplars on histogram buckets, counter families named without
// the _total suffix) over classic text format 0.0.4.
type family interface {
	name() string
	write(w io.Writer, om bool) error
}

// Registry holds registered metrics and exposes them in the Prometheus
// text format. Registration (New* methods) is expected at setup time;
// WritePrometheus and Handler may run concurrently with any number of writers.
type Registry struct {
	mu       sync.Mutex
	families []family
	byName   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

// register adds a family, panicking on duplicate names — metrics are
// package-level wiring, and two owners for one name is a programming
// error no caller could handle at runtime.
func (r *Registry) register(f family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[f.name()] {
		panic(fmt.Sprintf("metrics: %q registered twice", f.name()))
	}
	r.byName[f.name()] = true
	r.families = append(r.families, f)
}

// WritePrometheus writes every registered metric in the Prometheus text format, in
// registration order (children sorted by label values). Values are read
// with atomic loads while writers keep running; a scrape is a statistical
// snapshot, not a transaction.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeAll(w, false)
}

// WriteOpenMetrics writes the registry in the OpenMetrics text format:
// same series, plus exemplars on histogram buckets that have them, and the
// mandatory "# EOF" terminator. Scrapers that want exemplars (Prometheus
// with exemplar storage enabled) negotiate this via the Accept header.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeAll(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) writeAll(w io.Writer, om bool) error {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w, om); err != nil {
			return err
		}
	}
	return nil
}

// openMetricsContentType is what an OpenMetrics-negotiated scrape gets.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target. Clients whose Accept header asks for
// application/openmetrics-text get the OpenMetrics dialect (with
// exemplars); everyone else gets classic text format 0.0.4.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", openMetricsContentType)
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// desc is a family's metadata.
type desc struct {
	fqName string
	help   string
	typ    string
	labels []string
}

// header writes the # HELP / # TYPE preamble. In OpenMetrics, a counter
// family is declared under its name without the _total suffix while the
// sample line keeps it — classic format declares and samples the same
// name.
func (d *desc) header(w io.Writer, om bool) error {
	name := d.fqName
	if om && d.typ == "counter" {
		name = strings.TrimSuffix(name, "_total")
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		name, escapeHelp(d.help), name, d.typ)
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// labelString renders {k="v",...} for the given names and values; extra
// appends one more pair (the histogram "le" label). Empty names render
// nothing (plain metrics).
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use once registered; all methods are lock-free.
type Counter struct {
	v atomic.Uint64
	d *desc
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{d: &desc{fqName: name, help: help, typ: "counter"}}
	r.register(counterFamily{c})
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

type counterFamily struct{ c *Counter }

func (f counterFamily) name() string { return f.c.d.fqName }
func (f counterFamily) write(w io.Writer, om bool) error {
	if err := f.c.d.header(w, om); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", f.c.d.fqName, f.c.Value())
	return err
}

// Gauge is an integer-valued gauge (connection counts, versions, health
// bits); all methods are lock-free.
type Gauge struct {
	v atomic.Int64
	d *desc
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{d: &desc{fqName: name, help: help, typ: "gauge"}}
	r.register(gaugeFamily{g})
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

type gaugeFamily struct{ g *Gauge }

func (f gaugeFamily) name() string { return f.g.d.fqName }
func (f gaugeFamily) write(w io.Writer, om bool) error {
	if err := f.g.d.header(w, om); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", f.g.d.fqName, f.g.Value())
	return err
}

// Histogram is a fixed-bucket histogram. Observe is lock-free and
// allocation-free: one atomic add on the matching bucket, one on the
// count, and a CAS loop folding the value into the float64 sum. Buckets
// are chosen at construction and never change.
//
// Each bucket additionally holds one exemplar slot — the most recent
// traced observation that landed there — exposed in the OpenMetrics
// dialect. Plain Observe never touches the slots, so exemplar support
// costs the untraced hot path nothing.
type Histogram struct {
	bounds    []float64 // upper bounds, ascending; +Inf implied at the end
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[exemplar]
	count     atomic.Uint64
	sumBits   atomic.Uint64
}

// exemplar is one traced observation pinned to a bucket.
type exemplar struct {
	trace string // trace ID in canonical hex form
	value float64
}

// newHistogram builds the bucket storage for the given bounds.
func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets must be strictly ascending")
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (nil = DefaultLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	f := &histogramFamily{d: &desc{fqName: name, help: help, typ: "histogram"}, h: h}
	r.register(f)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// bucket returns the index of the bucket v falls into.
func (h *Histogram) bucket(v float64) int {
	// Linear scan: bucket counts are small (≤ ~20) and latencies cluster in
	// the low buckets, so this beats a branchy binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// ObserveExemplar records one value and pins it as the bucket's exemplar
// under the given trace ID (canonical hex form). Unlike Observe it
// allocates (one exemplar), so callers use it only for sampled requests.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.bucket(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.exemplars[i].Store(&exemplar{trace: traceID, value: v})
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the one-liner for
// latency spans.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// writeSeries writes one histogram's _bucket/_sum/_count series under the
// given label set. In OpenMetrics mode, buckets carry their exemplar
// (" # {trace_id=\"...\"} value") when one has been recorded.
func (h *Histogram) writeSeries(w io.Writer, fqName string, names, values []string, om bool) error {
	cum := uint64(0)
	for i := 0; i <= len(h.bounds); i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		suffix := ""
		if om {
			if ex := h.exemplars[i].Load(); ex != nil {
				suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabel(ex.trace), formatFloat(ex.value))
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			fqName, labelString(names, values, "le", le), cum, suffix); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		fqName, labelString(names, values, "", ""), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		fqName, labelString(names, values, "", ""), h.Count())
	return err
}

type histogramFamily struct {
	d *desc
	h *Histogram
}

func (f *histogramFamily) name() string { return f.d.fqName }
func (f *histogramFamily) write(w io.Writer, om bool) error {
	if err := f.d.header(w, om); err != nil {
		return err
	}
	return f.h.writeSeries(w, f.d.fqName, nil, nil, om)
}

// vec is the shared child table behind CounterVec/GaugeVec/HistogramVec:
// children are created on first use and found by a key derived from the
// label values (the value itself for one label, a joined string for
// more, so the common single-label hot path never concatenates).
type vec[T any] struct {
	d        *desc
	mu       sync.RWMutex
	children map[string]*vecChild[T]
}

type vecChild[T any] struct {
	values []string
	v      T
}

func newVec[T any](name, help, typ string, labels []string) *vec[T] {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vec %q needs at least one label", name))
	}
	return &vec[T]{
		d:        &desc{fqName: name, help: help, typ: typ, labels: labels},
		children: map[string]*vecChild[T]{},
	}
}

// key derives the child map key; allocation-free for a single label.
func (v *vec[T]) key(lvs []string) string {
	if len(lvs) == 1 {
		return lvs[0]
	}
	return strings.Join(lvs, "\x1f")
}

// lookup is the hot path: one read lock, one map read, no allocation.
func (v *vec[T]) lookup(lvs []string) (*vecChild[T], bool) {
	k := v.key(lvs)
	v.mu.RLock()
	ch, ok := v.children[k]
	v.mu.RUnlock()
	return ch, ok
}

// create adds the child for lvs (first use), copying the values so the
// caller's (possibly stack-allocated) slice never escapes into the table.
func (v *vec[T]) create(lvs []string, mk func() T) *vecChild[T] {
	values := make([]string, len(lvs))
	copy(values, lvs)
	k := v.key(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok := v.children[k]; ok {
		return ch
	}
	ch := &vecChild[T]{values: values, v: mk()}
	v.children[k] = ch
	return ch
}

// delete removes the child for lvs, so deregistered models don't leak
// time series forever.
func (v *vec[T]) delete(lvs []string) {
	k := v.key(lvs)
	v.mu.Lock()
	delete(v.children, k)
	v.mu.Unlock()
}

// sorted returns the children ordered by label values for stable output.
func (v *vec[T]) sorted() []*vecChild[T] {
	v.mu.RLock()
	out := make([]*vecChild[T], 0, len(v.children))
	for _, ch := range v.children {
		out = append(out, ch)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

func (v *vec[T]) checkArity(lvs []string) {
	if len(lvs) != len(v.d.labels) {
		panic(fmt.Sprintf("metrics: %q expects %d label values, got %d",
			v.d.fqName, len(v.d.labels), len(lvs)))
	}
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ vec *vec[*Counter] }

// NewCounterVec registers and returns a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{vec: newVec[*Counter](name, help, "counter", labels)}
	r.register(cv)
	return cv
}

// With returns the child counter for the given label values, creating it
// on first use. Existing children are found without allocating; hot paths
// observing one child repeatedly should still cache the result.
func (cv *CounterVec) With(lvs ...string) *Counter {
	cv.vec.checkArity(lvs)
	if ch, ok := cv.vec.lookup(lvs); ok {
		return ch.v
	}
	return cv.vec.create(lvs, func() *Counter { return &Counter{} }).v
}

// Delete drops the child for the given label values.
func (cv *CounterVec) Delete(lvs ...string) { cv.vec.delete(lvs) }

func (cv *CounterVec) name() string { return cv.vec.d.fqName }
func (cv *CounterVec) write(w io.Writer, om bool) error {
	d := cv.vec.d
	if err := d.header(w, om); err != nil {
		return err
	}
	for _, ch := range cv.vec.sorted() {
		if _, err := fmt.Fprintf(w, "%s%s %d\n",
			d.fqName, labelString(d.labels, ch.values, "", ""), ch.v.Value()); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ vec *vec[*Gauge] }

// NewGaugeVec registers and returns a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{vec: newVec[*Gauge](name, help, "gauge", labels)}
	r.register(gv)
	return gv
}

// With returns the child gauge for the given label values, creating it on
// first use.
func (gv *GaugeVec) With(lvs ...string) *Gauge {
	gv.vec.checkArity(lvs)
	if ch, ok := gv.vec.lookup(lvs); ok {
		return ch.v
	}
	return gv.vec.create(lvs, func() *Gauge { return &Gauge{} }).v
}

// Delete drops the child for the given label values.
func (gv *GaugeVec) Delete(lvs ...string) { gv.vec.delete(lvs) }

func (gv *GaugeVec) name() string { return gv.vec.d.fqName }
func (gv *GaugeVec) write(w io.Writer, om bool) error {
	d := gv.vec.d
	if err := d.header(w, om); err != nil {
		return err
	}
	for _, ch := range gv.vec.sorted() {
		if _, err := fmt.Fprintf(w, "%s%s %d\n",
			d.fqName, labelString(d.labels, ch.values, "", ""), ch.v.Value()); err != nil {
			return err
		}
	}
	return nil
}

// HistogramVec is a family of histograms keyed by label values, all
// sharing one bucket layout.
type HistogramVec struct {
	vec     *vec[*Histogram]
	buckets []float64
}

// NewHistogramVec registers and returns a labelled histogram family with
// the given bucket upper bounds (nil = DefaultLatencyBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	hv := &HistogramVec{
		vec:     newVec[*Histogram](name, help, "histogram", labels),
		buckets: append([]float64(nil), buckets...),
	}
	r.register(hv)
	return hv
}

// With returns the child histogram for the given label values, creating
// it on first use.
func (hv *HistogramVec) With(lvs ...string) *Histogram {
	hv.vec.checkArity(lvs)
	if ch, ok := hv.vec.lookup(lvs); ok {
		return ch.v
	}
	return hv.vec.create(lvs, func() *Histogram { return newHistogram(hv.buckets) }).v
}

// Delete drops the child for the given label values.
func (hv *HistogramVec) Delete(lvs ...string) { hv.vec.delete(lvs) }

func (hv *HistogramVec) name() string { return hv.vec.d.fqName }
func (hv *HistogramVec) write(w io.Writer, om bool) error {
	d := hv.vec.d
	if err := d.header(w, om); err != nil {
		return err
	}
	for _, ch := range hv.vec.sorted() {
		if err := ch.v.writeSeries(w, d.fqName, d.labels, ch.values, om); err != nil {
			return err
		}
	}
	return nil
}
