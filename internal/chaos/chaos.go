// Package chaos wraps net.Listener and net.Conn with deterministic,
// seeded fault injection for resilience testing.
//
// The wrapper speaks pure net interfaces, so it slots between any server
// and its listener without the server knowing: accepts can be refused,
// reads can be delayed or delivered in small chunks, a connection can
// stall for a long beat mid-stream, and writes can cut the connection
// mid-frame. Every decision comes from a PRNG seeded from Config.Seed
// and the per-listener accept ordinal, so a given (seed, schedule of
// accepts) replays the same faults — failures found under chaos are
// reproducible by rerunning with the same seed.
//
// Faults are injected below the protocol layer on purpose: the client
// under test must recover using only its public resilience machinery
// (typed errors, retries, hedges, breakers), exactly as it would against
// a flaky production network.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config describes the fault mix. All probabilities are per-connection
// in [0, 1]; zero-valued fields inject nothing, so Config{} is a no-op
// wrapper.
type Config struct {
	// Seed fixes the fault schedule. Two Wrap calls with equal Config
	// inject identical faults for the same sequence of accepts.
	Seed int64

	// Latency delays every read on an afflicted connection by a uniform
	// duration in [Latency/2, Latency]. Applied to LatencyProb of conns.
	Latency     time.Duration
	LatencyProb float64

	// StallProb stalls one read per afflicted connection for Stall
	// (default 250ms) — the tail-latency straggler hedging exists for.
	Stall     time.Duration
	StallProb float64

	// CutProb cuts the connection after a random prefix of some write —
	// a mid-frame drop the peer sees as a transport error.
	CutProb float64

	// RefuseProb makes Accept close the connection immediately, before
	// the handshake — a connection-refused-after-accept failure.
	RefuseProb float64

	// ChunkReads caps bytes delivered per Read on latency-afflicted
	// connections, forcing the peer through many short reads. 0 leaves
	// read sizes alone.
	ChunkReads int
}

// ParseSpec builds a Config from a compact comma-separated spec, e.g.
//
//	"seed=7,latency=5ms,latencyprob=0.5,stall=200ms,stallprob=0.1,cut=0.05,refuse=0.05,chunk=64"
//
// Unknown keys are an error so typos fail loudly in CI rather than
// silently injecting nothing.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec term %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(v)
		case "latencyprob":
			cfg.LatencyProb, err = strconv.ParseFloat(v, 64)
		case "stall":
			cfg.Stall, err = time.ParseDuration(v)
		case "stallprob":
			cfg.StallProb, err = strconv.ParseFloat(v, 64)
		case "cut":
			cfg.CutProb, err = strconv.ParseFloat(v, 64)
		case "refuse":
			cfg.RefuseProb, err = strconv.ParseFloat(v, 64)
		case "chunk":
			cfg.ChunkReads, err = strconv.Atoi(v)
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: bad value for %q: %v", k, err)
		}
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 250 * time.Millisecond
	}
	return cfg, nil
}

// Wrap returns a listener that injects cfg's faults into every accepted
// connection. The fault schedule is deterministic in (cfg.Seed, accept
// ordinal); wrapping distinct listeners with distinct seeds gives each
// replica an independent but reproducible failure personality.
func Wrap(lis net.Listener, cfg Config) net.Listener {
	return &listener{Listener: lis, cfg: cfg}
}

type listener struct {
	net.Listener
	cfg Config
	mu  sync.Mutex
	n   int64 // accept ordinal, drives the per-conn seed
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		ordinal := l.n
		l.n++
		l.mu.Unlock()
		rng := newConnRNG(l.cfg.Seed, ordinal)
		if l.cfg.RefuseProb > 0 && rng.Float64() < l.cfg.RefuseProb {
			conn.Close()
			continue // refused: hand the server the NEXT conn
		}
		return wrapConn(conn, l.cfg, rng), nil
	}
}

// newConnRNG derives one connection's PRNG: the schedule depends only on
// the listener seed and how many conns it accepted before this one.
func newConnRNG(seed, ordinal int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 0x9e3779b9*ordinal))
}

// plan is the faults one connection will experience, decided entirely at
// accept time so the data path only consults precomputed fields.
type plan struct {
	readDelay time.Duration // per-read added latency (0 = none)
	chunk     int           // max bytes per Read (0 = unlimited)
	stallAt   int64         // stall once when total bytes read crosses this (-1 = never)
	stallFor  time.Duration
	cutAt     int64 // cut the conn when total bytes written crosses this (-1 = never)
}

func wrapConn(conn net.Conn, cfg Config, rng *rand.Rand) net.Conn {
	p := plan{stallAt: -1, cutAt: -1}
	if cfg.Latency > 0 && cfg.LatencyProb > 0 && rng.Float64() < cfg.LatencyProb {
		half := cfg.Latency / 2
		p.readDelay = half + time.Duration(rng.Int63n(int64(half)+1))
		p.chunk = cfg.ChunkReads
	}
	if cfg.StallProb > 0 && rng.Float64() < cfg.StallProb {
		p.stallAt = rng.Int63n(4096)
		p.stallFor = cfg.Stall
	}
	if cfg.CutProb > 0 && rng.Float64() < cfg.CutProb {
		p.cutAt = rng.Int63n(4096)
	}
	fc := &faultConn{Conn: conn, plan: p}
	if _, ok := conn.(interface{ CloseWrite() error }); ok {
		return &faultConnCW{faultConn: fc}
	}
	return fc
}

// faultConn applies a plan to one connection. Counters are guarded by
// distinct mutexes for the read and write sides, matching net.Conn's
// one-reader/one-writer concurrency contract without serialising the
// two directions against each other.
type faultConn struct {
	net.Conn
	plan plan

	readMu    sync.Mutex
	bytesRead int64
	stalled   bool

	writeMu      sync.Mutex
	bytesWritten int64
	cut          bool
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.readMu.Lock()
	delay := c.plan.readDelay
	stall := time.Duration(0)
	if c.plan.stallAt >= 0 && !c.stalled && c.bytesRead >= c.plan.stallAt {
		c.stalled = true
		stall = c.plan.stallFor
	}
	c.readMu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if c.plan.chunk > 0 && len(p) > c.plan.chunk {
		p = p[:c.plan.chunk]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.readMu.Lock()
		c.bytesRead += int64(n)
		c.readMu.Unlock()
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.writeMu.Lock()
	cutNow := false
	var prefix int64 = -1
	if c.plan.cutAt >= 0 && !c.cut && c.bytesWritten+int64(len(p)) > c.plan.cutAt {
		c.cut = true
		cutNow = true
		prefix = c.plan.cutAt - c.bytesWritten
		if prefix < 0 {
			prefix = 0
		}
	}
	c.writeMu.Unlock()
	if cutNow {
		// Deliver a partial frame, then kill the conn so the peer sees
		// an abrupt transport failure mid-message.
		if prefix > 0 {
			c.Conn.Write(p[:prefix])
		}
		c.Conn.Close()
		return int(prefix), net.ErrClosed
	}
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.writeMu.Lock()
		c.bytesWritten += int64(n)
		c.writeMu.Unlock()
	}
	return n, err
}

// faultConnCW forwards CloseWrite for conns that have it (TCP), so the
// server's graceful FIN path still works through the chaos wrapper —
// faults must not accidentally break clean shutdown.
type faultConnCW struct {
	*faultConn
}

func (c *faultConnCW) CloseWrite() error {
	return c.Conn.(interface{ CloseWrite() error }).CloseWrite()
}
