package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,latency=5ms,latencyprob=0.5,stall=200ms,stallprob=0.1,cut=0.05,refuse=0.05,chunk=64")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if cfg.Seed != 7 || cfg.Latency != 5*time.Millisecond || cfg.LatencyProb != 0.5 {
		t.Fatalf("latency fields wrong: %+v", cfg)
	}
	if cfg.Stall != 200*time.Millisecond || cfg.StallProb != 0.1 {
		t.Fatalf("stall fields wrong: %+v", cfg)
	}
	if cfg.CutProb != 0.05 || cfg.RefuseProb != 0.05 || cfg.ChunkReads != 64 {
		t.Fatalf("cut/refuse/chunk wrong: %+v", cfg)
	}
}

func TestParseSpecEmptyAndErrors(t *testing.T) {
	if cfg, err := ParseSpec(""); err != nil || cfg.LatencyProb != 0 {
		t.Fatalf("empty spec should be a no-op config, got %+v, %v", cfg, err)
	}
	for _, bad := range []string{"latency", "bogus=1", "latency=zzz", "cut=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestParseSpecDefaultStall(t *testing.T) {
	cfg, err := ParseSpec("stallprob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Stall != 250*time.Millisecond {
		t.Fatalf("default stall = %v, want 250ms", cfg.Stall)
	}
}

// startEcho serves one echo loop per accepted conn on a chaos-wrapped
// listener and returns its address.
func startEcho(t *testing.T, cfg Config) net.Addr {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	wrapped := Wrap(lis, cfg)
	go func() {
		for {
			conn, err := wrapped.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	return lis.Addr()
}

func TestNoFaultsPassthrough(t *testing.T) {
	addr := startEcho(t, Config{})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through a no-op chaos wrapper")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestLatencyInjection(t *testing.T) {
	addr := startEcho(t, Config{Seed: 1, Latency: 30 * time.Millisecond, LatencyProb: 1})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	// The server's read of our byte is delayed by at least Latency/2.
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("round trip %v shows no injected latency", d)
	}
}

func TestRefuseEventuallyAdmits(t *testing.T) {
	// refuse=0.5: some dials die, but the wrapped Accept loop keeps
	// serving, so retrying dials must eventually get echoed.
	addr := startEcho(t, Config{Seed: 42, RefuseProb: 0.5})
	ok := false
	for i := 0; i < 20 && !ok; i++ {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			continue
		}
		conn.SetDeadline(time.Now().Add(time.Second))
		if _, err := conn.Write([]byte("y")); err == nil {
			if _, err := io.ReadFull(conn, make([]byte, 1)); err == nil {
				ok = true
			}
		}
		conn.Close()
	}
	if !ok {
		t.Fatal("no dial ever survived refuse=0.5 across 20 attempts")
	}
}

func TestCutKillsConnMidWrite(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	wrapped := Wrap(lis, Config{Seed: 3, CutProb: 1})
	errCh := make(chan error, 1)
	go func() {
		conn, err := wrapped.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer conn.Close()
		// Server tries to push more than cutAt bytes; the wrapper must
		// cut it and report a write error.
		buf := make([]byte, 64<<10)
		var werr error
		for i := 0; i < 4 && werr == nil; i++ {
			_, werr = conn.Write(buf)
		}
		errCh <- werr
	}()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	// Drain until the cut lands: we must see EOF/reset, not a full 256KiB.
	n, _ := io.Copy(io.Discard, conn)
	if n >= 256<<10 {
		t.Fatalf("read %d bytes; cut never happened", n)
	}
	if werr := <-errCh; werr == nil {
		t.Fatal("server write never saw the cut")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 99, Latency: time.Millisecond, LatencyProb: 0.5, CutProb: 0.3, StallProb: 0.2, Stall: time.Millisecond}
	plans := func() []plan {
		var out []plan
		for i := int64(0); i < 32; i++ {
			rng := newConnRNG(cfg.Seed, i)
			c := wrapConn(nopConn{}, cfg, rng)
			switch fc := c.(type) {
			case *faultConn:
				out = append(out, fc.plan)
			case *faultConnCW:
				out = append(out, fc.plan)
			}
		}
		return out
	}
	a, b := plans(), plans()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

type nopConn struct{ net.Conn }
