package hdl

import (
	"bytes"
	"strings"
	"testing"

	"privehd/internal/fpga"
	"privehd/internal/hrand"
	"privehd/internal/netlist"
)

func buildXor(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("xor2")
	a := n.AddInput("a")
	b := n.AddInput("b")
	xor := fpga.FuncLUT6(2, func(in []bool) bool { return in[0] != in[1] })
	n.MarkOutput(n.AddLUT("y", xor, a, b))
	return n
}

func TestWriteVerilogXor(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, buildXor(t)); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module xor2 (",
		"input  wire a,",
		"input  wire b,",
		"output wire y0",
		"LUT6 #(.INIT(64'h", // primitive instance
		".I0(a)",
		".I1(b)",
		".I2(1'b0)", // unused inputs tied off
		"assign y0 = n0;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q:\n%s", want, v)
		}
	}
}

func TestWriteVerilogXorTruthTable(t *testing.T) {
	// FuncLUT6 ignores unused input lines, so the 2-input XOR pattern 0x6
	// replicates across every I2..I5 combination: INIT = 0x666...6. That
	// makes the primitive's output independent of the tie-off value.
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, buildXor(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "64'h6666666666666666") {
		t.Errorf("expected replicated XOR INIT 0x666...6, got:\n%s", buf.String())
	}
}

func TestWriteVerilogDeterministic(t *testing.T) {
	nl, _ := netlist.BuildBipolarApprox(30, hrand.New(5))
	var a, b bytes.Buffer
	if err := WriteVerilog(&a, nl); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerilog(&b, nl); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("emission must be deterministic")
	}
}

func TestWriteVerilogMajorityCircuit(t *testing.T) {
	nl := netlist.BuildBipolarExact(13, true)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, nl); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	// Structure reflected in the header comment.
	if !strings.Contains(v, "13 inputs") {
		t.Errorf("header missing input count:\n%s", v[:200])
	}
	// Every LUT in the netlist appears as a primitive.
	if got := strings.Count(v, "LUT6 #(.INIT("); got != nl.NumLUTs() {
		t.Errorf("emitted %d LUT6 instances, netlist has %d", got, nl.NumLUTs())
	}
	// All 13 inputs declared.
	for i := 0; i < 13; i++ {
		if !strings.Contains(v, "input  wire x"+itoa(i)) {
			t.Errorf("missing input x%d", i)
		}
	}
}

func itoa(i int) string {
	return string(rune('0' + i%10)) // only used for small indices in tests
}

func TestSanitize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"abc", "abc"},
		{"a-b.c", "a_b_c"},
		{"0start", "_0start"},
		{"", "unnamed"},
		{"pc_g0_cnt1", "pc_g0_cnt1"},
	}
	for _, tt := range tests {
		if got := sanitize(tt.in); got != tt.want {
			t.Errorf("sanitize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
