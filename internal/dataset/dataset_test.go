package dataset

import (
	"testing"

	"privehd/internal/hrand"
)

func TestGaussianGeometry(t *testing.T) {
	d, err := Gaussian(GaussianSpec{
		Name: "toy", Features: 12, Classes: 3, TrainPer: 5, TestPer: 2,
		Separation: 0.05, Noise: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.TrainX) != 15 || len(d.TestX) != 6 {
		t.Errorf("sizes = %d train, %d test", len(d.TrainX), len(d.TestX))
	}
	for _, x := range d.TrainX {
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("feature %v out of [0,1]", v)
			}
		}
	}
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 5 {
			t.Errorf("class %d count = %d, want 5", c, n)
		}
	}
}

func TestGaussianSpecValidation(t *testing.T) {
	bad := []GaussianSpec{
		{Features: 0, Classes: 2, TrainPer: 1, TestPer: 1, Separation: 0.1, Noise: 0.1},
		{Features: 5, Classes: 1, TrainPer: 1, TestPer: 1, Separation: 0.1, Noise: 0.1},
		{Features: 5, Classes: 2, TrainPer: 0, TestPer: 1, Separation: 0.1, Noise: 0.1},
		{Features: 5, Classes: 2, TrainPer: 1, TestPer: 1, Separation: 0, Noise: 0.1},
		{Features: 5, Classes: 2, TrainPer: 1, TestPer: 1, Separation: 0.1, Noise: 0},
	}
	for i, s := range bad {
		if _, err := Gaussian(s); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

func TestGaussianDeterminism(t *testing.T) {
	spec := GaussianSpec{
		Name: "det", Features: 8, Classes: 2, TrainPer: 3, TestPer: 2,
		Separation: 0.05, Noise: 0.2, Seed: 7,
	}
	a, err := Gaussian(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Gaussian(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TrainX {
		for j := range a.TrainX[i] {
			if a.TrainX[i][j] != b.TrainX[i][j] {
				t.Fatal("same seed must generate identical data")
			}
		}
	}
}

func TestGaussianClassesDiffer(t *testing.T) {
	d, err := Gaussian(GaussianSpec{
		Name: "sep", Features: 100, Classes: 2, TrainPer: 20, TestPer: 5,
		Separation: 0.1, Noise: 0.05, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Class means must be distinguishable: mean distance between the two
	// class centroids should well exceed the within-class spread.
	centroid := func(c int) []float64 {
		m := make([]float64, d.Features)
		n := 0
		for i, x := range d.TrainX {
			if d.TrainY[i] != c {
				continue
			}
			for j, v := range x {
				m[j] += v
			}
			n++
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	c0, c1 := centroid(0), centroid(1)
	var dist float64
	for j := range c0 {
		dd := c0[j] - c1[j]
		dist += dd * dd
	}
	if dist < 0.01 {
		t.Errorf("class centroids nearly identical: dist² = %v", dist)
	}
}

func TestMNISTGeometry(t *testing.T) {
	d, err := MNIST(MNISTSpec{Name: "m", TrainPer: 3, TestPer: 2, Jitter: 2, Noise: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Features != 784 || d.Classes != 10 || d.ImageWidth != 28 {
		t.Errorf("geometry = (%d, %d, %d)", d.Features, d.Classes, d.ImageWidth)
	}
	if len(d.TrainX) != 30 || len(d.TestX) != 20 {
		t.Errorf("sizes = %d, %d", len(d.TrainX), len(d.TestX))
	}
}

func TestMNISTDigitsDistinct(t *testing.T) {
	// Noise-free, jitter-free renders of different digits must differ.
	d, err := MNIST(MNISTSpec{Name: "m", TrainPer: 1, TestPer: 1, Jitter: 0, Noise: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(d.TrainX); i++ {
		for j := i + 1; j < len(d.TrainX); j++ {
			if d.TrainY[i] == d.TrainY[j] {
				continue
			}
			same := true
			for k := range d.TrainX[i] {
				if d.TrainX[i][k] != d.TrainX[j][k] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("digits %d and %d render identically", d.TrainY[i], d.TrainY[j])
			}
		}
	}
}

func TestMNISTInkCoverage(t *testing.T) {
	// Each clean digit must have a plausible ink fraction: not blank, not
	// full.
	d, err := MNIST(MNISTSpec{Name: "m", TrainPer: 1, TestPer: 1, Jitter: 0, Noise: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.TrainX {
		var ink float64
		for _, v := range x {
			ink += v
		}
		frac := ink / float64(len(x))
		if frac < 0.02 || frac > 0.6 {
			t.Errorf("digit %d ink fraction %v implausible", d.TrainY[i], frac)
		}
	}
}

func TestMNISTSpecValidation(t *testing.T) {
	for i, s := range []MNISTSpec{
		{TrainPer: 0, TestPer: 1},
		{TrainPer: 1, TestPer: 1, Jitter: -1},
		{TrainPer: 1, TestPer: 1, Jitter: 9},
		{TrainPer: 1, TestPer: 1, Noise: -0.1},
	} {
		if _, err := MNIST(s); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

func TestSubset(t *testing.T) {
	d, err := Gaussian(GaussianSpec{
		Name: "sub", Features: 4, Classes: 2, TrainPer: 10, TestPer: 2,
		Separation: 0.05, Noise: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := d.Subset(0.5)
	if len(half.TrainX) != 10 {
		t.Errorf("half subset size = %d, want 10", len(half.TrainX))
	}
	counts := half.ClassCounts()
	if counts[0] != 5 || counts[1] != 5 {
		t.Errorf("subset unbalanced: %v", counts)
	}
	// Test split shared.
	if len(half.TestX) != len(d.TestX) {
		t.Error("subset should share the test split")
	}
	// Tiny fraction keeps at least one per class.
	tiny := d.Subset(0.01)
	tc := tiny.ClassCounts()
	if tc[0] < 1 || tc[1] < 1 {
		t.Errorf("tiny subset lost a class: %v", tc)
	}
	// Full fraction returns the dataset unchanged.
	if d.Subset(1.0) != d {
		t.Error("Subset(1) should return the receiver")
	}
}

func TestShuffled(t *testing.T) {
	d, err := Gaussian(GaussianSpec{
		Name: "shuf", Features: 4, Classes: 2, TrainPer: 20, TestPer: 2,
		Separation: 0.05, Noise: 0.1, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Shuffled(hrand.New(13))
	if len(s.TrainX) != len(d.TrainX) {
		t.Fatal("shuffle changed size")
	}
	// Same multiset of labels.
	if got, want := s.ClassCounts(), d.ClassCounts(); got[0] != want[0] || got[1] != want[1] {
		t.Errorf("shuffle changed label counts: %v vs %v", got, want)
	}
	// Original untouched (train order differs with overwhelming probability).
	moved := false
	for i := range d.TrainY {
		if d.TrainY[i] != s.TrainY[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Log("shuffle produced identity permutation (unlikely but legal)")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"isolet-s", "face-s", "mnist-s"} {
		d, err := ByName(name, Small)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := ByName("nope", Small); err == nil {
		t.Error("unknown name should fail")
	}
	all, err := Standard(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("Standard returned %d datasets", len(all))
	}
	// Paper geometries.
	if all[0].Features != 617 || all[0].Classes != 26 {
		t.Errorf("isolet-s geometry = (%d, %d)", all[0].Features, all[0].Classes)
	}
	if all[1].Features != 608 || all[1].Classes != 2 {
		t.Errorf("face-s geometry = (%d, %d)", all[1].Features, all[1].Classes)
	}
	if all[2].Features != 784 || all[2].Classes != 10 {
		t.Errorf("mnist-s geometry = (%d, %d)", all[2].Features, all[2].Classes)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d, err := Gaussian(GaussianSpec{
		Name: "v", Features: 4, Classes: 2, TrainPer: 2, TestPer: 1,
		Separation: 0.05, Noise: 0.1, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.TrainY[0] = 99
	if err := d.Validate(); err == nil {
		t.Error("Validate should catch out-of-range label")
	}
	d.TrainY[0] = 0
	d.TrainX[0] = []float64{1}
	if err := d.Validate(); err == nil {
		t.Error("Validate should catch wrong feature count")
	}
}
