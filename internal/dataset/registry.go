package dataset

import "fmt"

// Scale selects how much data the standard workloads generate. Unit tests
// use Small; the experiment harness and benchmarks use Full.
type Scale int

const (
	// Small generates quick datasets for unit and smoke tests.
	Small Scale = iota
	// Full generates the experiment-scale datasets used to regenerate the
	// paper's figures.
	Full
)

// The per-class sample counts at each scale. The paper's corpora are larger
// (ISOLET 6238 train / MNIST 60k), but HD class vectors saturate well below
// that; these sizes reproduce the figures' shapes at tractable runtime, and
// the Fig. 8d sweep explores the size axis explicitly.
func counts(s Scale, fullTrain, fullTest int) (train, test int) {
	if s == Full {
		return fullTrain, fullTest
	}
	return max(fullTrain/40, 4), max(fullTest/10, 2)
}

// ISOLETS generates the ISOLET stand-in: 617 features, 26 classes.
// Separation/noise are calibrated so the non-private full-precision HD
// baseline lands in the paper's low-90s% band at D_hv = 10,000.
func ISOLETS(s Scale) (*Dataset, error) {
	train, test := counts(s, 240, 20)
	return Gaussian(GaussianSpec{
		Name:            "isolet-s",
		Features:        617,
		Classes:         26,
		TrainPer:        train,
		TestPer:         test,
		Separation:      0.15,
		Noise:           0.25,
		ActiveFraction:  0.25,
		ClusterSize:     2,
		IntraSeparation: 0.075,
		Seed:            0x150137,
	})
}

// FACES generates the Caltech web-faces stand-in: 608 features, binary.
func FACES(s Scale) (*Dataset, error) {
	train, test := counts(s, 3000, 150)
	return Gaussian(GaussianSpec{
		Name:           "face-s",
		Features:       608,
		Classes:        2,
		TrainPer:       train,
		TestPer:        test,
		Separation:     0.05,
		Noise:          0.20,
		ActiveFraction: 0.3,
		Seed:           0xFACE5,
	})
}

// MNISTS generates the MNIST stand-in: 28×28 procedural digit images.
func MNISTS(s Scale) (*Dataset, error) {
	train, test := counts(s, 600, 50)
	return MNIST(MNISTSpec{
		Name:     "mnist-s",
		TrainPer: train,
		TestPer:  test,
		Jitter:   3,
		Noise:    0.24,
		Seed:     0x31157,
	})
}

// ByName returns the named standard workload ("isolet-s", "face-s",
// "mnist-s") at the given scale.
func ByName(name string, s Scale) (*Dataset, error) {
	switch name {
	case "isolet-s":
		return ISOLETS(s)
	case "face-s":
		return FACES(s)
	case "mnist-s":
		return MNISTS(s)
	}
	return nil, fmt.Errorf("dataset: unknown workload %q (valid: isolet-s, face-s, mnist-s)", name)
}

// Standard returns all three paper workloads at the given scale, in the
// order the paper tabulates them (ISOLET, FACE, MNIST).
func Standard(s Scale) ([]*Dataset, error) {
	var out []*Dataset
	for _, name := range []string{"isolet-s", "face-s", "mnist-s"} {
		d, err := ByName(name, s)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
