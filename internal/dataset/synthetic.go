package dataset

import (
	"fmt"

	"privehd/internal/hrand"
)

// GaussianSpec parameterizes a synthetic prototype-mixture task: each class
// has a prototype feature vector (a shared baseline plus a class-specific
// offset) and samples are noisy copies of it, clamped to [0,1].
//
// Difficulty is governed by the Separation/Noise ratio: the pairwise
// prototype distance grows as sqrt(2·Features)·Separation while the
// within-class spread is Noise, so (with many classes) accuracy is tuned by
// that ratio largely independent of feature count.
type GaussianSpec struct {
	Name       string
	Features   int
	Classes    int
	TrainPer   int // training samples per class
	TestPer    int // test samples per class
	Separation float64
	Noise      float64
	// ActiveFraction is the fraction of features that carry class signal
	// (each class offsets a random subset of this size; the rest stay at
	// the shared baseline). Real extracted-feature sets concentrate their
	// class information in a minority of strong features, which is what
	// lets HD classify well below D_hv = 10^4; 0 or 1 means all features
	// are informative.
	ActiveFraction float64
	// ClusterSize groups classes into confusable clusters: classes in the
	// same cluster share a cluster prototype and differ only by a weaker
	// IntraSeparation offset. Real ISOLET behaves this way (the spoken
	// "e-set" letters B/C/D/E... are mutually confusable), and it is what
	// gives the dataset an accuracy ceiling below 100% without destroying
	// low-dimension performance. 0 or 1 disables clustering.
	ClusterSize int
	// IntraSeparation is the prototype offset scale within a cluster;
	// ignored unless ClusterSize > 1.
	IntraSeparation float64
	Seed            uint64
}

// Validate reports whether the spec can generate a dataset.
func (s GaussianSpec) Validate() error {
	switch {
	case s.Features <= 0:
		return fmt.Errorf("dataset: %s: Features must be positive", s.Name)
	case s.Classes < 2:
		return fmt.Errorf("dataset: %s: need at least 2 classes", s.Name)
	case s.TrainPer <= 0 || s.TestPer <= 0:
		return fmt.Errorf("dataset: %s: TrainPer and TestPer must be positive", s.Name)
	case s.Separation <= 0 || s.Noise <= 0:
		return fmt.Errorf("dataset: %s: Separation and Noise must be positive", s.Name)
	case s.ActiveFraction < 0 || s.ActiveFraction > 1:
		return fmt.Errorf("dataset: %s: ActiveFraction must be in [0,1]", s.Name)
	case s.ClusterSize < 0:
		return fmt.Errorf("dataset: %s: ClusterSize must be non-negative", s.Name)
	case s.ClusterSize > 1 && s.IntraSeparation <= 0:
		return fmt.Errorf("dataset: %s: clustering needs a positive IntraSeparation", s.Name)
	}
	return nil
}

// Gaussian generates the dataset described by the spec.
func Gaussian(spec GaussianSpec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src := hrand.New(spec.Seed)
	protoSrc := src.Split(1)
	trainSrc := src.Split(2)
	testSrc := src.Split(3)

	// Shared baseline keeps features away from the clamp walls so noise
	// stays roughly symmetric.
	baseline := make([]float64, spec.Features)
	for i := range baseline {
		baseline[i] = 0.3 + 0.4*protoSrc.Float64()
	}
	active := spec.Features
	if spec.ActiveFraction > 0 && spec.ActiveFraction < 1 {
		active = int(spec.ActiveFraction * float64(spec.Features))
		if active < 1 {
			active = 1
		}
	}
	offsetProto := func(from []float64, scale float64) []float64 {
		p := make([]float64, spec.Features)
		copy(p, from)
		for _, i := range protoSrc.SampleK(spec.Features, active) {
			p[i] = clamp01(from[i] + protoSrc.Normal(0, scale))
		}
		return p
	}
	protos := make([][]float64, spec.Classes)
	if spec.ClusterSize > 1 {
		// One strong prototype per cluster; members perturb it weakly.
		var cluster []float64
		for c := range protos {
			if c%spec.ClusterSize == 0 {
				cluster = offsetProto(baseline, spec.Separation)
			}
			protos[c] = offsetProto(cluster, spec.IntraSeparation)
		}
	} else {
		for c := range protos {
			protos[c] = offsetProto(baseline, spec.Separation)
		}
	}

	d := &Dataset{Name: spec.Name, Features: spec.Features, Classes: spec.Classes}
	sample := func(rs *hrand.Source, c int) []float64 {
		x := make([]float64, spec.Features)
		for i := range x {
			x[i] = clamp01(protos[c][i] + rs.Normal(0, spec.Noise))
		}
		return x
	}
	for c := 0; c < spec.Classes; c++ {
		for n := 0; n < spec.TrainPer; n++ {
			d.TrainX = append(d.TrainX, sample(trainSrc, c))
			d.TrainY = append(d.TrainY, c)
		}
		for n := 0; n < spec.TestPer; n++ {
			d.TestX = append(d.TestX, sample(testSrc, c))
			d.TestY = append(d.TestY, c)
		}
	}
	// Interleave classes so Subset and prefix-based experimentation see
	// balanced streams.
	interleave(d, spec.Classes)
	return d, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// interleave reorders class-blocked samples into round-robin class order.
func interleave(d *Dataset, classes int) {
	reorder := func(X [][]float64, y []int) {
		n := len(y)
		if n == 0 {
			return
		}
		per := n / classes
		nx := make([][]float64, 0, n)
		ny := make([]int, 0, n)
		for i := 0; i < per; i++ {
			for c := 0; c < classes; c++ {
				idx := c*per + i
				nx = append(nx, X[idx])
				ny = append(ny, y[idx])
			}
		}
		copy(X, nx)
		copy(y, ny)
	}
	reorder(d.TrainX, d.TrainY)
	reorder(d.TestX, d.TestY)
}
