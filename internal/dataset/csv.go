package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The synthetic stand-ins exist because this reproduction is offline; users
// who do hold the real corpora (UCI ISOLET ships as CSV-like .data files)
// can load them here and run every experiment unchanged.

// CSVOptions controls parsing of a feature CSV.
type CSVOptions struct {
	// Name labels the resulting dataset.
	Name string
	// LabelColumn is the column index holding the class label; -1 means
	// the last column (the UCI convention).
	LabelColumn int
	// HasHeader skips the first row.
	HasHeader bool
	// Normalize rescales every feature column to [0,1] by its min/max;
	// without it, values must already be in [0,1] for the encoders'
	// level mapping to behave.
	Normalize bool
	// LabelOffset is subtracted from each numeric label (ISOLET labels
	// classes 1..26; the library wants 0..25).
	LabelOffset int
	// TestFraction carves the last fraction of rows into the test split
	// (0 < TestFraction < 1). Rows are used in file order; shuffle
	// upstream if the file is class-ordered.
	TestFraction float64
}

// LoadCSV reads a delimited feature file into a Dataset.
func LoadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	if opts.TestFraction <= 0 || opts.TestFraction >= 1 {
		return nil, fmt.Errorf("dataset: TestFraction must be in (0,1), got %v", opts.TestFraction)
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if opts.HasHeader && len(rows) > 0 {
		rows = rows[1:]
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("dataset: CSV has %d data rows, need at least 2", len(rows))
	}
	width := len(rows[0])
	if width < 2 {
		return nil, fmt.Errorf("dataset: CSV rows need at least 2 columns, got %d", width)
	}
	labelCol := opts.LabelColumn
	if labelCol < 0 {
		labelCol = width - 1
	}
	if labelCol >= width {
		return nil, fmt.Errorf("dataset: label column %d out of range for %d columns", labelCol, width)
	}

	features := width - 1
	var X [][]float64
	var y []int
	maxLabel := 0
	for i, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("dataset: row %d has %d columns, want %d", i, len(row), width)
		}
		x := make([]float64, 0, features)
		for c, cell := range row {
			if c == labelCol {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %d: %w", i, c, err)
			}
			x = append(x, v)
		}
		lf, err := strconv.ParseFloat(row[labelCol], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d label: %w", i, err)
		}
		label := int(lf) - opts.LabelOffset
		if label < 0 {
			return nil, fmt.Errorf("dataset: row %d label %d negative after offset", i, label)
		}
		if label > maxLabel {
			maxLabel = label
		}
		X = append(X, x)
		y = append(y, label)
	}

	if opts.Normalize {
		normalizeColumns(X)
	}

	split := len(X) - int(opts.TestFraction*float64(len(X)))
	if split <= 0 || split >= len(X) {
		return nil, fmt.Errorf("dataset: TestFraction %v leaves an empty split", opts.TestFraction)
	}
	d := &Dataset{
		Name:     opts.Name,
		Features: features,
		Classes:  maxLabel + 1,
		TrainX:   X[:split],
		TrainY:   y[:split],
		TestX:    X[split:],
		TestY:    y[split:],
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// normalizeColumns rescales each feature column to [0,1] in place; constant
// columns map to 0.
func normalizeColumns(X [][]float64) {
	if len(X) == 0 {
		return
	}
	width := len(X[0])
	for c := 0; c < width; c++ {
		lo, hi := X[0][c], X[0][c]
		for _, row := range X {
			if row[c] < lo {
				lo = row[c]
			}
			if row[c] > hi {
				hi = row[c]
			}
		}
		span := hi - lo
		for _, row := range X {
			if span == 0 {
				row[c] = 0
			} else {
				row[c] = (row[c] - lo) / span
			}
		}
	}
}
