// Package dataset provides the evaluation workloads of the Prive-HD
// reproduction.
//
// The paper evaluates on ISOLET (UCI speech, 617 features, 26 classes),
// MNIST (28×28 handwritten digits, 10 classes) and the Caltech web-faces
// dataset (FACE, 608 extracted features, binary). None of those corpora can
// ship with an offline, stdlib-only reproduction, so this package generates
// synthetic stand-ins with the same geometry (feature count, class count,
// value range) and calibrated difficulty, as documented in DESIGN.md §2:
//
//   - ISOLET-S and FACE-S are Gaussian prototype mixtures over [0,1]
//     features — matching how the real sets behave as HD workloads (dense
//     extracted features, moderate class overlap).
//   - MNIST-S renders procedural 28×28 digit glyphs with jitter and noise,
//     so the reconstruction experiments (paper Figs. 2 and 6) produce
//     images a human can judge.
//
// Every generator is deterministic in its seed.
package dataset

import (
	"fmt"

	"privehd/internal/hrand"
)

// Dataset is a self-contained train/test classification task with
// normalized features in [0,1].
type Dataset struct {
	// Name identifies the workload in reports ("isolet-s", ...).
	Name string
	// Features is the input dimensionality D_iv.
	Features int
	// Classes is the number of labels.
	Classes int
	// TrainX/TrainY are the training samples and labels.
	TrainX [][]float64
	TrainY []int
	// TestX/TestY are the held-out evaluation samples and labels.
	TestX [][]float64
	TestY []int
	// ImageWidth is the row width when samples are renderable images
	// (MNIST-S: 28); 0 for non-visual feature sets.
	ImageWidth int
}

// Validate checks internal consistency of the dataset.
func (d *Dataset) Validate() error {
	if d.Features <= 0 || d.Classes <= 0 {
		return fmt.Errorf("dataset %s: bad geometry (%d features, %d classes)", d.Name, d.Features, d.Classes)
	}
	if len(d.TrainX) != len(d.TrainY) {
		return fmt.Errorf("dataset %s: %d train samples, %d labels", d.Name, len(d.TrainX), len(d.TrainY))
	}
	if len(d.TestX) != len(d.TestY) {
		return fmt.Errorf("dataset %s: %d test samples, %d labels", d.Name, len(d.TestX), len(d.TestY))
	}
	check := func(X [][]float64, y []int, split string) error {
		for i, x := range X {
			if len(x) != d.Features {
				return fmt.Errorf("dataset %s: %s sample %d has %d features, want %d",
					d.Name, split, i, len(x), d.Features)
			}
			if y[i] < 0 || y[i] >= d.Classes {
				return fmt.Errorf("dataset %s: %s label %d out of range", d.Name, split, i)
			}
		}
		return nil
	}
	if err := check(d.TrainX, d.TrainY, "train"); err != nil {
		return err
	}
	return check(d.TestX, d.TestY, "test")
}

// Subset returns a copy of d whose training split keeps only the first
// fraction of samples per class (the paper's Fig. 8d data-size sweep keeps
// class balance). The test split is shared, not copied. fraction clamps to
// [0,1]; at least one sample per represented class is retained when
// fraction > 0.
func (d *Dataset) Subset(fraction float64) *Dataset {
	if fraction >= 1 {
		return d
	}
	if fraction < 0 {
		fraction = 0
	}
	perClass := make(map[int]int)
	for _, y := range d.TrainY {
		perClass[y]++
	}
	budget := make(map[int]int, len(perClass))
	for c, n := range perClass {
		keep := int(fraction * float64(n))
		if keep == 0 && fraction > 0 {
			keep = 1
		}
		budget[c] = keep
	}
	out := &Dataset{
		Name:       fmt.Sprintf("%s[%.0f%%]", d.Name, fraction*100),
		Features:   d.Features,
		Classes:    d.Classes,
		TestX:      d.TestX,
		TestY:      d.TestY,
		ImageWidth: d.ImageWidth,
	}
	for i, x := range d.TrainX {
		c := d.TrainY[i]
		if budget[c] > 0 {
			budget[c]--
			out.TrainX = append(out.TrainX, x)
			out.TrainY = append(out.TrainY, c)
		}
	}
	return out
}

// Shuffled returns a copy of d with the training split reordered by the
// given source. Sample slices are shared, not copied.
func (d *Dataset) Shuffled(src *hrand.Source) *Dataset {
	out := &Dataset{
		Name:       d.Name,
		Features:   d.Features,
		Classes:    d.Classes,
		TrainX:     append([][]float64(nil), d.TrainX...),
		TrainY:     append([]int(nil), d.TrainY...),
		TestX:      d.TestX,
		TestY:      d.TestY,
		ImageWidth: d.ImageWidth,
	}
	src.Shuffle(len(out.TrainX), func(i, j int) {
		out.TrainX[i], out.TrainX[j] = out.TrainX[j], out.TrainX[i]
		out.TrainY[i], out.TrainY[j] = out.TrainY[j], out.TrainY[i]
	})
	return out
}

// ClassCounts returns the number of training samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.TrainY {
		counts[y]++
	}
	return counts
}
