package dataset

import (
	"strings"
	"testing"
)

const sampleCSV = `0.1, 0.9, 1
0.2, 0.8, 1
0.3, 0.7, 2
0.4, 0.6, 2
0.5, 0.5, 1
0.6, 0.4, 2
`

func TestLoadCSVBasic(t *testing.T) {
	d, err := LoadCSV(strings.NewReader(sampleCSV), CSVOptions{
		Name: "csv-test", LabelColumn: -1, LabelOffset: 1, TestFraction: 0.34,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Features != 2 || d.Classes != 2 {
		t.Fatalf("geometry = (%d, %d)", d.Features, d.Classes)
	}
	if len(d.TrainX) != 4 || len(d.TestX) != 2 {
		t.Fatalf("split = (%d, %d)", len(d.TrainX), len(d.TestX))
	}
	if d.TrainX[0][0] != 0.1 || d.TrainX[0][1] != 0.9 {
		t.Errorf("row 0 = %v", d.TrainX[0])
	}
	if d.TrainY[0] != 0 || d.TrainY[2] != 1 {
		t.Errorf("labels = %v", d.TrainY)
	}
}

func TestLoadCSVHeaderAndNormalize(t *testing.T) {
	in := "a,b,label\n10, 0, 5\n20, 50, 6\n30, 100, 5\n40, 100, 6\n"
	d, err := LoadCSV(strings.NewReader(in), CSVOptions{
		Name: "n", LabelColumn: -1, HasHeader: true, Normalize: true,
		LabelOffset: 5, TestFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.TrainX[0][0] != 0 {
		t.Errorf("min not normalized to 0: %v", d.TrainX[0][0])
	}
	// Max of column 0 is 40 (test row) → 1.0.
	if d.TestX[0][0] != 1 {
		t.Errorf("max not normalized to 1: %v", d.TestX[0][0])
	}
	if d.Classes != 2 {
		t.Errorf("classes = %d", d.Classes)
	}
}

func TestLoadCSVLabelColumnFirst(t *testing.T) {
	in := "1, 0.5, 0.6\n0, 0.7, 0.8\n1, 0.1, 0.2\n0, 0.3, 0.4\n"
	d, err := LoadCSV(strings.NewReader(in), CSVOptions{
		Name: "first", LabelColumn: 0, TestFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Features != 2 {
		t.Fatalf("features = %d", d.Features)
	}
	if d.TrainY[0] != 1 || d.TrainX[0][0] != 0.5 {
		t.Errorf("first-column label parsing wrong: y=%v x=%v", d.TrainY[0], d.TrainX[0])
	}
}

func TestLoadCSVConstantColumnNormalizesToZero(t *testing.T) {
	in := "7, 0.1, 0\n7, 0.9, 1\n7, 0.5, 0\n7, 0.3, 1\n"
	d, err := LoadCSV(strings.NewReader(in), CSVOptions{
		Name: "const", LabelColumn: -1, Normalize: true, TestFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range d.TrainX {
		if x[0] != 0 {
			t.Errorf("constant column should normalize to 0, got %v", x[0])
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts CSVOptions
	}{
		{"bad fraction", sampleCSV, CSVOptions{TestFraction: 0}},
		{"fraction one", sampleCSV, CSVOptions{TestFraction: 1}},
		{"too few rows", "1,2,0\n", CSVOptions{TestFraction: 0.5}},
		{"one column", "1\n2\n3\n", CSVOptions{TestFraction: 0.34}},
		{"bad float", "x, 2, 0\n1, 2, 0\n1, 2, 1\n", CSVOptions{TestFraction: 0.34}},
		{"bad label", "1, 2, z\n1, 2, 0\n3, 4, 1\n", CSVOptions{TestFraction: 0.34}},
		{"negative label", "1, 2, 0\n1, 2, 1\n3, 4, 0\n", CSVOptions{LabelOffset: 5, TestFraction: 0.34}},
		{"label col range", sampleCSV, CSVOptions{LabelColumn: 9, TestFraction: 0.34}},
	}
	for _, tc := range cases {
		if _, err := LoadCSV(strings.NewReader(tc.in), tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestLoadCSVRoundTripThroughPipeline(t *testing.T) {
	// A CSV-loaded dataset must drop into the encoders unchanged.
	var b strings.Builder
	for i := 0; i < 40; i++ {
		c := i % 2
		if c == 0 {
			b.WriteString("0.2, 0.8, 0.3, 0\n")
		} else {
			b.WriteString("0.8, 0.2, 0.7, 1\n")
		}
	}
	d, err := LoadCSV(strings.NewReader(b.String()), CSVOptions{
		Name: "pipeline", LabelColumn: -1, TestFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Features != 3 || d.Classes != 2 {
		t.Fatalf("geometry = (%d, %d)", d.Features, d.Classes)
	}
}
