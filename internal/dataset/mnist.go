package dataset

import (
	"fmt"

	"privehd/internal/hrand"
)

// MNISTSpec parameterizes the procedural handwritten-digit stand-in.
// Images are 28×28 grayscale in [0,1], rendered from a 5×7 glyph font with
// per-sample translation jitter, box-blur anti-aliasing and pixel noise —
// enough variation that classification is non-trivial and reconstruction
// experiments (paper Figs. 2 and 6) produce recognizable digits.
type MNISTSpec struct {
	Name     string
	TrainPer int // training samples per digit
	TestPer  int // test samples per digit
	// Jitter is the maximum absolute translation in pixels (paper-style
	// MNIST variation; 2 is the default).
	Jitter int
	// Noise is the per-pixel Gaussian noise sigma.
	Noise float64
	Seed  uint64
}

// MNISTSide is the image side length: samples are MNISTSide² features.
const MNISTSide = 28

// glyphs is a 5×7 digit font; '#' marks ink.
var glyphs = [10][7]string{
	{" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "},
	{"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},
	{" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"},
	{" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "},
	{"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "},
	{"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "},
	{" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "},
	{"#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "},
	{" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "},
	{" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "},
}

// Validate reports whether the spec can generate a dataset.
func (s MNISTSpec) Validate() error {
	switch {
	case s.TrainPer <= 0 || s.TestPer <= 0:
		return fmt.Errorf("dataset: %s: TrainPer and TestPer must be positive", s.Name)
	case s.Jitter < 0 || s.Jitter > 5:
		return fmt.Errorf("dataset: %s: Jitter must be in [0,5]", s.Name)
	case s.Noise < 0:
		return fmt.Errorf("dataset: %s: Noise must be non-negative", s.Name)
	}
	return nil
}

// MNIST generates the dataset described by the spec.
func MNIST(spec MNISTSpec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src := hrand.New(spec.Seed)
	trainSrc := src.Split(1)
	testSrc := src.Split(2)
	d := &Dataset{
		Name:       spec.Name,
		Features:   MNISTSide * MNISTSide,
		Classes:    10,
		ImageWidth: MNISTSide,
	}
	for digit := 0; digit < 10; digit++ {
		for n := 0; n < spec.TrainPer; n++ {
			d.TrainX = append(d.TrainX, renderDigit(trainSrc, digit, spec))
			d.TrainY = append(d.TrainY, digit)
		}
		for n := 0; n < spec.TestPer; n++ {
			d.TestX = append(d.TestX, renderDigit(testSrc, digit, spec))
			d.TestY = append(d.TestY, digit)
		}
	}
	interleave(d, 10)
	return d, nil
}

// renderDigit rasterizes one jittered, blurred, noisy digit image.
func renderDigit(src *hrand.Source, digit int, spec MNISTSpec) []float64 {
	const (
		cell = 4 // glyph cell → pixel scale (7 rows × 4 = 28)
		padX = (MNISTSide - 5*cell) / 2
	)
	dx, dy := 0, 0
	if spec.Jitter > 0 {
		dx = src.IntN(2*spec.Jitter+1) - spec.Jitter
		dy = src.IntN(2*spec.Jitter+1) - spec.Jitter
	}
	sharp := make([]float64, MNISTSide*MNISTSide)
	g := &glyphs[digit]
	for r := 0; r < 7; r++ {
		for c := 0; c < 5; c++ {
			if g[r][c] != '#' {
				continue
			}
			for py := 0; py < cell; py++ {
				for px := 0; px < cell; px++ {
					y := r*cell + py + dy
					x := padX + c*cell + px + dx
					if y >= 0 && y < MNISTSide && x >= 0 && x < MNISTSide {
						sharp[y*MNISTSide+x] = 1
					}
				}
			}
		}
	}
	// 3×3 box blur softens the glyph edges into grayscale.
	img := boxBlur(sharp, MNISTSide)
	if spec.Noise > 0 {
		for i := range img {
			img[i] = clamp01(img[i] + src.Normal(0, spec.Noise))
		}
	}
	return img
}

// boxBlur applies a 3×3 mean filter with edge clamping.
func boxBlur(img []float64, side int) []float64 {
	out := make([]float64, len(img))
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			var sum float64
			var n int
			for ky := -1; ky <= 1; ky++ {
				for kx := -1; kx <= 1; kx++ {
					yy, xx := y+ky, x+kx
					if yy >= 0 && yy < side && xx >= 0 && xx < side {
						sum += img[yy*side+xx]
						n++
					}
				}
			}
			out[y*side+x] = sum / float64(n)
		}
	}
	return out
}
