package hdc

import (
	"privehd/internal/bitvec"
	"privehd/internal/hrand"
)

// ItemMemory holds the D_iv random bipolar base (location) hypervectors
// ~B_k of Eq. 2, one per input feature position. Bases are generated
// independently, which makes them near-orthogonal at HD dimensions — the
// property both the encoding and the reconstruction attack rely on.
type ItemMemory struct {
	dim    int
	packed []*bitvec.Vector
	floats [][]float64 // unpacked view, materialized lazily per base
}

// NewItemMemory generates an item memory with `features` bases of dimension
// dim from the given random source.
func NewItemMemory(src *hrand.Source, features, dim int) *ItemMemory {
	m := &ItemMemory{
		dim:    dim,
		packed: make([]*bitvec.Vector, features),
		floats: make([][]float64, features),
	}
	for k := range m.packed {
		v := bitvec.New(dim)
		for j := 0; j < dim; j++ {
			if src.Uint64()&1 == 1 {
				v.Set(j, true)
			}
		}
		m.packed[k] = v
	}
	return m
}

// Len returns the number of bases (D_iv).
func (m *ItemMemory) Len() int { return len(m.packed) }

// Dim returns the hypervector dimensionality.
func (m *ItemMemory) Dim() int { return m.dim }

// Packed returns base k in packed form. The returned vector is shared and
// must not be modified.
func (m *ItemMemory) Packed(k int) *bitvec.Vector { return m.packed[k] }

// Floats returns base k as a ±1 float slice, materializing and caching it on
// first use. The returned slice is shared and must not be modified.
func (m *ItemMemory) Floats(k int) []float64 {
	if m.floats[k] == nil {
		m.floats[k] = m.packed[k].Floats()
	}
	return m.floats[k]
}

// LevelMemory holds the ℓ_iv level hypervectors ~L of Eq. 2b. Per the
// paper, ~L_0 is random, consecutive levels differ by D_hv/(2·ℓ_iv) flipped
// bits, and the chain ends ~L_0 and ~L_{ℓ−1} are orthogonal.
//
// Implementation choice: the flipped positions are disjoint across steps
// (drawn from one random permutation), so the total flip count from first to
// last level is exactly (ℓ−1)·⌊D/(2ℓ)⌋ distinct bits ≈ D/2, making the end
// points orthogonal by construction rather than only in expectation. The
// paper's "randomly chosen" wording permits either; disjoint flips give the
// cleaner invariant (and are what reference HD implementations do).
type LevelMemory struct {
	dim      int
	perStep  int
	packed   []*bitvec.Vector
	floats   [][]float64
	flipPlan [][]int // flipPlan[k] = positions flipped between level k and k+1
}

// NewLevelMemory generates a level memory with `levels` vectors of dimension
// dim from the given random source.
func NewLevelMemory(src *hrand.Source, levels, dim int) *LevelMemory {
	m := &LevelMemory{
		dim:      dim,
		perStep:  dim / (2 * levels),
		packed:   make([]*bitvec.Vector, levels),
		floats:   make([][]float64, levels),
		flipPlan: make([][]int, levels-1),
	}
	base := bitvec.New(dim)
	for j := 0; j < dim; j++ {
		if src.Uint64()&1 == 1 {
			base.Set(j, true)
		}
	}
	m.packed[0] = base
	perm := src.Perm(dim)
	pos := 0
	for k := 1; k < levels; k++ {
		next := m.packed[k-1].Clone()
		flips := make([]int, 0, m.perStep)
		for i := 0; i < m.perStep; i++ {
			j := perm[pos%dim]
			pos++
			next.Flip(j)
			flips = append(flips, j)
		}
		m.flipPlan[k-1] = flips
		m.packed[k] = next
	}
	return m
}

// Len returns the number of levels.
func (m *LevelMemory) Len() int { return len(m.packed) }

// Dim returns the hypervector dimensionality.
func (m *LevelMemory) Dim() int { return m.dim }

// FlipsPerStep returns the number of bits flipped between consecutive
// levels, ⌊D_hv/(2·ℓ_iv)⌋.
func (m *LevelMemory) FlipsPerStep() int { return m.perStep }

// Packed returns level k in packed form. The returned vector is shared and
// must not be modified.
func (m *LevelMemory) Packed(k int) *bitvec.Vector { return m.packed[k] }

// Floats returns level k as a ±1 float slice, cached after first use. The
// returned slice is shared and must not be modified.
func (m *LevelMemory) Floats(k int) []float64 {
	if m.floats[k] == nil {
		m.floats[k] = m.packed[k].Floats()
	}
	return m.floats[k]
}
