package hdc

import (
	"math"
	"testing"
	"testing/quick"

	"privehd/internal/hrand"
	"privehd/internal/vecmath"
)

func TestLevelIndex(t *testing.T) {
	tests := []struct {
		v      float64
		levels int
		want   int
	}{
		{-0.5, 10, 0},
		{0, 10, 0},
		{0.05, 10, 0},
		{0.15, 10, 1},
		{0.95, 10, 9},
		{1, 10, 9},
		{1.5, 10, 9},
		{0.5, 2, 1},
		{0.49, 2, 0},
	}
	for _, tt := range tests {
		if got := LevelIndex(tt.v, tt.levels); got != tt.want {
			t.Errorf("LevelIndex(%v, %d) = %d, want %d", tt.v, tt.levels, got, tt.want)
		}
	}
}

func TestLevelIndexAlwaysInRange(t *testing.T) {
	f := func(v float64, levels uint8) bool {
		l := int(levels%62) + 2
		idx := LevelIndex(v, l)
		return idx >= 0 && idx < l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLevelValue(t *testing.T) {
	if got := LevelValue(0, 10); got != 0 {
		t.Errorf("LevelValue(0,10) = %v, want 0", got)
	}
	if got := LevelValue(9, 10); got != 1 {
		t.Errorf("LevelValue(9,10) = %v, want 1", got)
	}
	if got := LevelValue(1, 2); got != 1 {
		t.Errorf("LevelValue(1,2) = %v, want 1", got)
	}
	if got := LevelValue(0, 1); got != 0 {
		t.Errorf("LevelValue(0,1) = %v, want 0", got)
	}
}

func TestConfigValidate(t *testing.T) {
	valid := Config{Dim: 100, Features: 10, Levels: 4, Seed: 1}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{Dim: 0, Features: 10, Levels: 4},
		{Dim: 100, Features: 0, Levels: 4},
		{Dim: 100, Features: 10, Levels: 1},
		{Dim: -5, Features: 10, Levels: 4},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v should be rejected", bad)
		}
	}
}

func TestNewEncodersRejectBadConfig(t *testing.T) {
	if _, err := NewScalarEncoder(Config{}); err == nil {
		t.Error("NewScalarEncoder accepted zero config")
	}
	if _, err := NewLevelEncoder(Config{}); err == nil {
		t.Error("NewLevelEncoder accepted zero config")
	}
}

func mustScalar(t *testing.T, cfg Config) *ScalarEncoder {
	t.Helper()
	e, err := NewScalarEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustLevel(t *testing.T, cfg Config) *LevelEncoder {
	t.Helper()
	e, err := NewLevelEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestScalarEncodeLinearity(t *testing.T) {
	// Eq. 2a is linear in the level values: encoding a one-hot feature
	// vector returns exactly f · B_k.
	cfg := Config{Dim: 500, Features: 8, Levels: 11, Seed: 42}
	e := mustScalar(t, cfg)
	features := make([]float64, cfg.Features)
	features[3] = 1 // level 10, value 1.0
	h := e.Encode(features)
	base := e.Base(3)
	for j := range h {
		if h[j] != base[j] {
			t.Fatalf("one-hot encoding should equal the base at dim %d: %v vs %v", j, h[j], base[j])
		}
	}
}

func TestScalarEncodeSuperposition(t *testing.T) {
	cfg := Config{Dim: 400, Features: 6, Levels: 5, Seed: 7}
	e := mustScalar(t, cfg)
	a := []float64{1, 0, 0, 0, 0, 0}
	b := []float64{0, 0, 1, 0, 0, 0}
	ab := []float64{1, 0, 1, 0, 0, 0}
	ha, hb, hab := e.Encode(a), e.Encode(b), e.Encode(ab)
	for j := range hab {
		if math.Abs(hab[j]-(ha[j]+hb[j])) > 1e-12 {
			t.Fatalf("superposition violated at dim %d", j)
		}
	}
}

func TestScalarEncodeDeterministic(t *testing.T) {
	cfg := Config{Dim: 300, Features: 5, Levels: 4, Seed: 9}
	e1 := mustScalar(t, cfg)
	e2 := mustScalar(t, cfg)
	in := []float64{0.1, 0.9, 0.5, 0.3, 0.7}
	h1, h2 := e1.Encode(in), e2.Encode(in)
	for j := range h1 {
		if h1[j] != h2[j] {
			t.Fatal("same config+seed must encode identically")
		}
	}
}

func TestScalarEncodePanicsOnWrongLength(t *testing.T) {
	e := mustScalar(t, Config{Dim: 100, Features: 4, Levels: 4, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Encode([]float64{1, 2})
}

func TestLevelEncodeValuesBounded(t *testing.T) {
	// Every dimension of an Eq. 2b encoding is a sum of D_iv ±1 terms.
	cfg := Config{Dim: 256, Features: 20, Levels: 8, Seed: 3}
	e := mustLevel(t, cfg)
	src := hrand.New(10)
	in := make([]float64, cfg.Features)
	for i := range in {
		in[i] = src.Float64()
	}
	h := e.Encode(in)
	if len(h) != cfg.Dim {
		t.Fatalf("encoding dim = %d", len(h))
	}
	for j, v := range h {
		if math.Abs(v) > float64(cfg.Features) {
			t.Fatalf("dim %d magnitude %v exceeds D_iv", j, v)
		}
		// Parity: sum of D_iv odd/even ±1 terms has D_iv's parity.
		if int(math.Abs(v))%2 != cfg.Features%2 {
			t.Fatalf("dim %d value %v has wrong parity", j, v)
		}
	}
}

func TestLevelEncodeMatchesNaive(t *testing.T) {
	// The packed XNOR path must equal the naive float implementation
	// h[j] = Σ_k L[lvl_k][j] * B_k[j].
	cfg := Config{Dim: 128, Features: 10, Levels: 4, Seed: 21}
	e := mustLevel(t, cfg)
	src := hrand.New(22)
	in := make([]float64, cfg.Features)
	for i := range in {
		in[i] = src.Float64()
	}
	got := e.Encode(in)
	want := make([]float64, cfg.Dim)
	for k, v := range in {
		lvl := e.LevelVector(LevelIndex(v, cfg.Levels))
		base := e.Base(k)
		for j := range want {
			want[j] += lvl[j] * base[j]
		}
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("dim %d: packed %v vs naive %v", j, got[j], want[j])
		}
	}
}

func TestLevelEncodeSimilarInputsSimilarCodes(t *testing.T) {
	// Level encoding must preserve closeness: nearby feature vectors have
	// higher-cosine encodings than distant ones.
	cfg := Config{Dim: 4000, Features: 30, Levels: 20, Seed: 5}
	e := mustLevel(t, cfg)
	src := hrand.New(23)
	a := make([]float64, cfg.Features)
	for i := range a {
		a[i] = src.Float64()
	}
	near := make([]float64, cfg.Features)
	far := make([]float64, cfg.Features)
	for i := range a {
		near[i] = math.Min(1, a[i]+0.05)
		far[i] = 1 - a[i]
	}
	ha, hn, hf := e.Encode(a), e.Encode(near), e.Encode(far)
	cosNear := vecmath.Cosine(ha, hn)
	cosFar := vecmath.Cosine(ha, hf)
	if cosNear <= cosFar {
		t.Errorf("near cosine %v should exceed far cosine %v", cosNear, cosFar)
	}
	if cosNear < 0.5 {
		t.Errorf("near cosine %v unexpectedly low", cosNear)
	}
}

func TestBitPlanesMajorityEqualsSignOfEncoding(t *testing.T) {
	cfg := Config{Dim: 200, Features: 15, Levels: 6, Seed: 31}
	e := mustLevel(t, cfg)
	src := hrand.New(32)
	in := make([]float64, cfg.Features)
	for i := range in {
		in[i] = src.Float64()
	}
	h := e.Encode(in)
	planes := e.BitPlanes(in)
	if len(planes) != cfg.Features {
		t.Fatalf("planes = %d", len(planes))
	}
	for j := 0; j < cfg.Dim; j++ {
		var sum float64
		for _, p := range planes {
			sum += p.Sign(j)
		}
		if sum != h[j] {
			t.Fatalf("plane sum %v != encoding %v at dim %d", sum, h[j], j)
		}
	}
}

func TestEncodeBatchMatchesSequential(t *testing.T) {
	cfg := Config{Dim: 256, Features: 12, Levels: 8, Seed: 41}
	for _, mk := range []func() Encoder{
		func() Encoder { return mustScalar(t, cfg) },
		func() Encoder { return mustLevel(t, cfg) },
	} {
		e := mk()
		src := hrand.New(42)
		X := make([][]float64, 37)
		for i := range X {
			X[i] = make([]float64, cfg.Features)
			for k := range X[i] {
				X[i][k] = src.Float64()
			}
		}
		batch := EncodeBatch(e, X, 4)
		for i := range X {
			seq := e.Encode(X[i])
			for j := range seq {
				if batch[i][j] != seq[j] {
					t.Fatalf("batch/sequential mismatch sample %d dim %d", i, j)
				}
			}
		}
	}
}

func TestEncodeBatchEmpty(t *testing.T) {
	e := mustScalar(t, Config{Dim: 64, Features: 4, Levels: 4, Seed: 1})
	if got := EncodeBatch(e, nil, 4); got != nil {
		t.Errorf("EncodeBatch(nil) = %v, want nil", got)
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	cfg := Config{Dim: 256, Features: 12, Levels: 8, Seed: 3}
	x := make([]float64, cfg.Features)
	for k := range x {
		x[k] = float64(k) / float64(cfg.Features)
	}
	le, err := NewLevelEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewScalarEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, enc := range []Encoder{le, se} {
		want := enc.Encode(x)
		// A dirty buffer must be fully overwritten.
		buf := make([]float64, cfg.Dim)
		for j := range buf {
			buf[j] = -999
		}
		got := EncodeInto(enc, x, buf)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("EncodeInto[%d] = %v, Encode = %v", j, got[j], want[j])
			}
		}
	}
}
