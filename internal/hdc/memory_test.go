package hdc

import (
	"math"
	"testing"

	"privehd/internal/bitvec"
	"privehd/internal/hrand"
)

func TestItemMemoryGeometry(t *testing.T) {
	m := NewItemMemory(hrand.New(1), 20, 1000)
	if m.Len() != 20 {
		t.Fatalf("Len = %d, want 20", m.Len())
	}
	if m.Dim() != 1000 {
		t.Fatalf("Dim = %d, want 1000", m.Dim())
	}
	for k := 0; k < 20; k++ {
		if got := m.Packed(k).Len(); got != 1000 {
			t.Fatalf("base %d has dim %d", k, got)
		}
	}
}

func TestItemMemoryOrthogonality(t *testing.T) {
	// Pairwise cosine of independent bipolar bases is ~N(0, 1/D); check a
	// 5-sigma bound across all pairs of a small memory.
	const d = 4000
	m := NewItemMemory(hrand.New(2), 10, d)
	bound := 5 / math.Sqrt(d)
	for a := 0; a < m.Len(); a++ {
		for b := a + 1; b < m.Len(); b++ {
			cos := bitvec.Cosine(m.Packed(a), m.Packed(b))
			if math.Abs(cos) > bound {
				t.Errorf("bases %d,%d cosine %v exceeds bound %v", a, b, cos, bound)
			}
		}
	}
}

func TestItemMemoryFloatsMatchPacked(t *testing.T) {
	m := NewItemMemory(hrand.New(3), 5, 200)
	for k := 0; k < 5; k++ {
		f := m.Floats(k)
		p := m.Packed(k)
		for j := range f {
			if f[j] != p.Sign(j) {
				t.Fatalf("base %d floats/packed disagree at %d", k, j)
			}
		}
		// Cached: same backing array on second call.
		if &f[0] != &m.Floats(k)[0] {
			t.Error("Floats should cache")
		}
	}
}

func TestItemMemoryDeterminism(t *testing.T) {
	a := NewItemMemory(hrand.New(7), 8, 512)
	b := NewItemMemory(hrand.New(7), 8, 512)
	for k := 0; k < 8; k++ {
		if bitvec.Hamming(a.Packed(k), b.Packed(k)) != 0 {
			t.Fatal("same seed must give identical item memories")
		}
	}
}

func TestLevelMemoryFlipCounts(t *testing.T) {
	const d, levels = 1000, 10
	m := NewLevelMemory(hrand.New(4), levels, d)
	if m.Len() != levels {
		t.Fatalf("Len = %d", m.Len())
	}
	want := d / (2 * levels)
	if m.FlipsPerStep() != want {
		t.Fatalf("FlipsPerStep = %d, want %d", m.FlipsPerStep(), want)
	}
	for k := 1; k < levels; k++ {
		h := bitvec.Hamming(m.Packed(k-1), m.Packed(k))
		if h != want {
			t.Errorf("levels %d→%d hamming = %d, want %d", k-1, k, h, want)
		}
	}
}

func TestLevelMemoryEndsOrthogonal(t *testing.T) {
	// With disjoint flips, ends differ in exactly (ℓ−1)·⌊D/2ℓ⌋ bits ≈ D/2,
	// so their dot is ≈ 0 (paper: "~L_0 and ~L_{ℓ−1} are entirely
	// orthogonal").
	const d, levels = 10000, 100
	m := NewLevelMemory(hrand.New(5), levels, d)
	flipped := (levels - 1) * (d / (2 * levels))
	first, last := m.Packed(0), m.Packed(levels-1)
	if got := bitvec.Hamming(first, last); got != flipped {
		t.Fatalf("end-to-end hamming = %d, want %d", got, flipped)
	}
	cos := bitvec.Cosine(first, last)
	if math.Abs(cos) > 0.05 {
		t.Errorf("end levels cosine = %v, want ≈0", cos)
	}
}

func TestLevelMemoryMonotoneSimilarity(t *testing.T) {
	// Closer levels must stay more similar: cos(L0, Lk) decreases in k.
	const d, levels = 8000, 20
	m := NewLevelMemory(hrand.New(6), levels, d)
	prev := 1.1
	for k := 0; k < levels; k++ {
		cos := bitvec.Cosine(m.Packed(0), m.Packed(k))
		if cos > prev+1e-9 {
			t.Errorf("similarity not monotone at level %d: %v > %v", k, cos, prev)
		}
		prev = cos
	}
}

func TestLevelMemoryDeterminism(t *testing.T) {
	a := NewLevelMemory(hrand.New(8), 16, 640)
	b := NewLevelMemory(hrand.New(8), 16, 640)
	for k := 0; k < 16; k++ {
		if bitvec.Hamming(a.Packed(k), b.Packed(k)) != 0 {
			t.Fatal("same seed must give identical level memories")
		}
	}
}

func TestLevelMemoryFloats(t *testing.T) {
	m := NewLevelMemory(hrand.New(9), 4, 100)
	f := m.Floats(2)
	p := m.Packed(2)
	for j := range f {
		if f[j] != p.Sign(j) {
			t.Fatalf("floats/packed disagree at %d", j)
		}
	}
}
