package hdc

import "fmt"

// Train builds a model by bundling pre-encoded hypervectors into their class
// vectors (paper Eq. 3). encoded[i] must have length dim; labels[i] must be
// in [0, numClasses).
func Train(encoded [][]float64, labels []int, numClasses, dim int) (*Model, error) {
	if len(encoded) != len(labels) {
		return nil, fmt.Errorf("hdc: Train got %d encodings but %d labels", len(encoded), len(labels))
	}
	m := NewModel(numClasses, dim)
	for i, h := range encoded {
		l := labels[i]
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("hdc: Train label %d out of range [0,%d)", l, numClasses)
		}
		if len(h) != dim {
			return nil, fmt.Errorf("hdc: Train encoding %d has dim %d, want %d", i, len(h), dim)
		}
		m.Add(l, h)
	}
	return m, nil
}

// RetrainEpoch performs one pass of the paper's Eq. 5 update over the
// training set: every mispredicted query is added to its true class and
// subtracted from the predicted class. It returns the number of updates
// (mispredictions) made during the pass.
func RetrainEpoch(m *Model, encoded [][]float64, labels []int) int {
	updates := 0
	for i, h := range encoded {
		want := labels[i]
		got := m.Predict(h)
		if got != want {
			m.Add(want, h)
			m.Sub(got, h)
			updates++
		}
	}
	return updates
}

// Retrain runs up to `epochs` passes of RetrainEpoch, evaluating accuracy on
// (evalEncoded, evalLabels) after each pass. It returns the per-epoch
// accuracies (Fig. 4's curves) and stops early if an epoch makes zero
// updates, since further passes cannot change the model.
func Retrain(m *Model, encoded [][]float64, labels []int, evalEncoded [][]float64, evalLabels []int, epochs int) []float64 {
	accs := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		updates := RetrainEpoch(m, encoded, labels)
		accs = append(accs, Evaluate(m, evalEncoded, evalLabels))
		if updates == 0 {
			break
		}
	}
	return accs
}

// Evaluate returns the fraction of encoded queries whose prediction matches
// the label. An empty evaluation set scores 0.
func Evaluate(m *Model, encoded [][]float64, labels []int) float64 {
	if len(encoded) == 0 {
		return 0
	}
	correct := 0
	for i, h := range encoded {
		if m.Predict(h) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(encoded))
}

// ConfusionMatrix returns counts[t][p] of evaluation samples with true label
// t predicted as p.
func ConfusionMatrix(m *Model, encoded [][]float64, labels []int) [][]int {
	n := m.NumClasses()
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for i, h := range encoded {
		counts[labels[i]][m.Predict(h)]++
	}
	return counts
}
