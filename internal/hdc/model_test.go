package hdc

import (
	"bytes"
	"math"
	"testing"

	"privehd/internal/hrand"
)

func TestNewModel(t *testing.T) {
	m := NewModel(3, 100)
	if m.NumClasses() != 3 || m.Dim() != 100 {
		t.Fatalf("geometry = (%d, %d)", m.NumClasses(), m.Dim())
	}
	for l := 0; l < 3; l++ {
		if m.Count(l) != 0 {
			t.Errorf("fresh class %d count = %d", l, m.Count(l))
		}
	}
}

func TestNewModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(0, 100)
}

func TestAddSubCounts(t *testing.T) {
	m := NewModel(2, 4)
	h := []float64{1, 2, 3, 4}
	m.Add(0, h)
	m.Add(0, h)
	m.Sub(0, h)
	if m.Count(0) != 1 {
		t.Errorf("count = %d, want 1", m.Count(0))
	}
	got := m.Class(0)
	for i := range h {
		if got[i] != h[i] {
			t.Errorf("class vector = %v, want %v", got, h)
		}
	}
}

func TestPredictNearestClass(t *testing.T) {
	m := NewModel(2, 4)
	m.Add(0, []float64{1, 1, 0, 0})
	m.Add(1, []float64{0, 0, 1, 1})
	if got := m.Predict([]float64{2, 1, 0, 0}); got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
	if got := m.Predict([]float64{0, 0.5, 2, 1}); got != 1 {
		t.Errorf("Predict = %d, want 1", got)
	}
}

func TestScoresNormAdjusted(t *testing.T) {
	// A class with a large raw magnitude must not win just by magnitude:
	// Scores divide by the class norm.
	m := NewModel(2, 2)
	m.Add(0, []float64{100, 0}) // same direction as query, large norm
	m.Add(1, []float64{1, 0})   // same direction, small norm
	s := m.Scores([]float64{1, 0})
	if math.Abs(s[0]-s[1]) > 1e-12 {
		t.Errorf("norm adjustment failed: scores %v", s)
	}
}

func TestScoresEmptyClass(t *testing.T) {
	m := NewModel(2, 3)
	m.Add(0, []float64{1, 0, 0})
	s := m.Scores([]float64{1, 0, 0})
	if !math.IsInf(s[1], -1) {
		t.Errorf("empty class score = %v, want -Inf", s[1])
	}
	if m.Predict([]float64{1, 0, 0}) != 0 {
		t.Error("prediction should never pick an empty class")
	}
}

func TestInvalidateAfterExternalMutation(t *testing.T) {
	m := NewModel(1, 2)
	m.Add(0, []float64{3, 4})
	_ = m.Scores([]float64{1, 0}) // warm the norm cache
	c := m.Class(0)
	c[0], c[1] = 0, 1 // external mutation (what pruning/DP do)
	m.Invalidate(0)
	s := m.Scores([]float64{0, 1})
	if math.Abs(s[0]-1) > 1e-12 {
		t.Errorf("score after invalidate = %v, want 1", s[0])
	}
}

func TestInvalidateAll(t *testing.T) {
	m := NewModel(2, 2)
	m.Add(0, []float64{1, 0})
	m.Add(1, []float64{0, 1})
	_ = m.Scores([]float64{1, 1})
	for l := 0; l < 2; l++ {
		c := m.Class(l)
		c[0] *= 10
		c[1] *= 10
	}
	m.InvalidateAll()
	s := m.Scores([]float64{1, 0})
	if math.Abs(s[0]-1) > 1e-12 {
		t.Errorf("scores after InvalidateAll = %v", s)
	}
}

func TestCosine(t *testing.T) {
	m := NewModel(1, 2)
	m.Add(0, []float64{1, 0})
	if got := m.Cosine([]float64{1, 0}, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine = %v, want 1", got)
	}
	if got := m.Cosine([]float64{0, 1}, 0); got != 0 {
		t.Errorf("Cosine orthogonal = %v, want 0", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewModel(1, 2)
	m.Add(0, []float64{1, 2})
	c := m.Clone()
	c.Add(0, []float64{1, 1})
	if m.Class(0)[0] != 1 || m.Class(0)[1] != 2 {
		t.Error("Clone shares storage with original")
	}
	if c.Count(0) != 2 || m.Count(0) != 1 {
		t.Error("Clone counts wrong")
	}
}

func TestDimensionPanics(t *testing.T) {
	m := NewModel(1, 3)
	for _, f := range []func(){
		func() { m.Add(0, []float64{1}) },
		func() { m.Sub(0, []float64{1}) },
		func() { m.Scores([]float64{1}) },
		func() { m.Cosine([]float64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected dimension panic")
				}
			}()
			f()
		}()
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := hrand.New(50)
	m := NewModel(4, 64)
	for l := 0; l < 4; l++ {
		for i := 0; i < 3; i++ {
			m.Add(l, src.NormalVec(64, 0, 1))
		}
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClasses() != 4 || got.Dim() != 64 {
		t.Fatalf("loaded geometry = (%d, %d)", got.NumClasses(), got.Dim())
	}
	for l := 0; l < 4; l++ {
		if got.Count(l) != m.Count(l) {
			t.Errorf("class %d count = %d, want %d", l, got.Count(l), m.Count(l))
		}
		a, b := m.Class(l), got.Class(l)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("class %d differs at dim %d", l, j)
			}
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewBufferString("not a gob")); err == nil {
		t.Error("expected error for garbage input")
	}
}

func TestScoresIntoMatchesScores(t *testing.T) {
	m := NewModel(3, 4)
	m.Add(0, []float64{1, 2, 0, 0})
	m.Add(1, []float64{0, 0, 3, 1})
	// Class 2 stays empty: zero norm must still map to -Inf in both paths.
	q := []float64{1, 1, 1, 1}
	want := m.Scores(q)
	out := []float64{9, 9, 9}
	got := m.ScoresInto(q, out)
	for l := range want {
		if got[l] != want[l] && !(math.IsInf(got[l], -1) && math.IsInf(want[l], -1)) {
			t.Errorf("ScoresInto[%d] = %v, Scores = %v", l, got[l], want[l])
		}
	}
}
