package hdc

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelWire is the gob wire format for Model. Keeping it separate from the
// in-memory type lets the cached norms stay private and the format stay
// stable if internals change.
type modelWire struct {
	Dim     int
	Classes [][]float64
	Counts  []int
}

// Save writes the model to w in gob format.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{Dim: m.dim, Classes: m.classes, Counts: m.counts}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("hdc: saving model: %w", err)
	}
	return nil
}

// LoadModel reads a model previously written with Save.
func LoadModel(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("hdc: loading model: %w", err)
	}
	if wire.Dim <= 0 || len(wire.Classes) == 0 {
		return nil, fmt.Errorf("hdc: loaded model is malformed (dim=%d, classes=%d)",
			wire.Dim, len(wire.Classes))
	}
	m := NewModel(len(wire.Classes), wire.Dim)
	for l, c := range wire.Classes {
		if len(c) != wire.Dim {
			return nil, fmt.Errorf("hdc: loaded class %d has dim %d, want %d", l, len(c), wire.Dim)
		}
		copy(m.classes[l], c)
		if l < len(wire.Counts) {
			m.counts[l] = wire.Counts[l]
		}
	}
	return m, nil
}
