package hdc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrCorrupt reports a model blob that failed to decode or validate —
// truncated, bit-flipped, or hostile bytes. Loaders wrap every decode and
// bounds failure in it so callers (the on-disk store, the admin upload
// path) can map "bad blob" to one typed condition with errors.Is.
var ErrCorrupt = errors.New("hdc: corrupt model data")

// Hard ceilings on decoded geometry. Gob length fields are
// attacker-controlled, so every allocation a loader performs must be
// bounded before it happens; these caps sit far above any real Prive-HD
// deployment (the paper's largest geometry is D=10,000) while keeping the
// worst-case decode allocation in the hundreds of megabytes rather than
// unbounded.
const (
	// MaxDim bounds hypervector dimensionality.
	MaxDim = 1 << 22
	// MaxClasses bounds the label-space size.
	MaxClasses = 1 << 16
	// maxModelCells bounds classes×dim, the dominant allocation.
	maxModelCells = 1 << 28
)

// modelWire is the gob wire format for Model. Keeping it separate from the
// in-memory type lets the cached norms stay private and the format stay
// stable if internals change.
type modelWire struct {
	Dim     int
	Classes [][]float64
	Counts  []int
}

// Save writes the model to w in gob format.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{Dim: m.dim, Classes: m.classes, Counts: m.counts}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("hdc: saving model: %w", err)
	}
	return nil
}

// LoadModel reads a model previously written with Save. Any decode or
// validation failure wraps ErrCorrupt; garbage input never panics and
// never allocates beyond the MaxDim/MaxClasses ceilings.
func LoadModel(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrCorrupt, err)
	}
	switch {
	case wire.Dim <= 0 || wire.Dim > MaxDim:
		return nil, fmt.Errorf("%w: dim %d out of range (0, %d]", ErrCorrupt, wire.Dim, MaxDim)
	case len(wire.Classes) == 0 || len(wire.Classes) > MaxClasses:
		return nil, fmt.Errorf("%w: class count %d out of range (0, %d]", ErrCorrupt, len(wire.Classes), MaxClasses)
	case len(wire.Classes)*wire.Dim > maxModelCells:
		return nil, fmt.Errorf("%w: model size %d×%d exceeds %d cells", ErrCorrupt, len(wire.Classes), wire.Dim, maxModelCells)
	case len(wire.Counts) > len(wire.Classes):
		return nil, fmt.Errorf("%w: %d counts for %d classes", ErrCorrupt, len(wire.Counts), len(wire.Classes))
	}
	m := NewModel(len(wire.Classes), wire.Dim)
	for l, c := range wire.Classes {
		if len(c) != wire.Dim {
			return nil, fmt.Errorf("%w: class %d has dim %d, want %d", ErrCorrupt, l, len(c), wire.Dim)
		}
		for _, v := range c {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: class %d carries a non-finite value", ErrCorrupt, l)
			}
		}
		copy(m.classes[l], c)
		if l < len(wire.Counts) {
			if wire.Counts[l] < 0 {
				return nil, fmt.Errorf("%w: class %d has negative count %d", ErrCorrupt, l, wire.Counts[l])
			}
			m.counts[l] = wire.Counts[l]
		}
	}
	return m, nil
}
