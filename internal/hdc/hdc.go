// Package hdc implements the hyperdimensional computing substrate the paper
// builds on: random base (item) memories, level memories, the two encodings
// of Eq. 2, class-hypervector models (Eq. 3), cosine-similarity inference
// (Eq. 4) and mispredict-driven retraining (Eq. 5).
//
// Everything downstream — quantization, pruning, differential privacy, the
// reconstruction attack and the hardware path — operates on the types
// defined here.
package hdc

import (
	"errors"
	"fmt"
)

// Config describes the geometry of an HD encoding.
type Config struct {
	// Dim is the hypervector dimensionality D_hv (~10,000 in the paper).
	Dim int
	// Features is the input dimensionality D_iv (617 for ISOLET, 784 for
	// MNIST, 608 for FACE).
	Features int
	// Levels is the number of feature quantization levels ℓ_iv of Eq. 1.
	Levels int
	// Seed determines the random base and level memories; equal configs
	// with equal seeds produce identical encoders.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("hdc: Dim must be positive, got %d", c.Dim)
	case c.Features <= 0:
		return fmt.Errorf("hdc: Features must be positive, got %d", c.Features)
	case c.Levels < 2:
		return fmt.Errorf("hdc: Levels must be at least 2, got %d", c.Levels)
	}
	return nil
}

// ErrDimension is returned when a vector's length does not match the
// encoder or model geometry.
var ErrDimension = errors.New("hdc: dimension mismatch")

// LevelIndex maps a normalized feature value v ∈ [0,1] to its quantization
// level in [0, levels). Values outside [0,1] clamp, so denormalized inputs
// degrade gracefully instead of corrupting memory lookups.
func LevelIndex(v float64, levels int) int {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return levels - 1
	}
	idx := int(v * float64(levels))
	if idx >= levels {
		idx = levels - 1
	}
	return idx
}

// LevelValue returns the representative scalar f for a level index, i.e. the
// member of the feature set F = {f_0 … f_{ℓ−1}} of Eq. 1. Levels are evenly
// spaced on [0,1]: f_i = i/(ℓ−1), so f_0 = 0 and f_{ℓ−1} = 1.
func LevelValue(idx, levels int) float64 {
	if levels <= 1 {
		return 0
	}
	return float64(idx) / float64(levels-1)
}

// Encoder maps a normalized feature vector to its encoded hypervector.
// Both paper encodings implement it; so do the quantizing wrappers in the
// quant package.
type Encoder interface {
	// Encode returns a fresh hypervector of length Dim for the given
	// feature vector of length Features.
	Encode(features []float64) []float64
	// Dim returns the hypervector dimensionality D_hv.
	Dim() int
	// NumFeatures returns the input dimensionality D_iv.
	NumFeatures() int
}

// BaseProvider is implemented by encoders whose base hypervectors are
// exposed; the reconstruction attack (paper Eq. 9–10) needs them.
type BaseProvider interface {
	Encoder
	// Base returns base hypervector B_k as ±1 floats. The returned slice
	// is shared; callers must not modify it.
	Base(k int) []float64
}
