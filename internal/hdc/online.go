package hdc

import (
	"fmt"

	"privehd/internal/vecmath"
)

// OnlineTrain performs similarity-weighted single-pass training, the
// "OnlineHD" refinement of Eq. 3/5 from the HD literature: instead of
// bundling every encoding with weight 1, each sample is added with a weight
// proportional to how badly the current model handles it, and subtracted
// from a wrongly-winning class likewise:
//
//	correct prediction:  C_true += (1 − δ_true)·H        (reinforce weakly-known samples)
//	wrong prediction:    C_true += (1 − δ_true)·H
//	                     C_pred −= (1 − δ_pred)·H
//
// where δ is the cosine similarity of H to the class. One online pass
// typically matches one-shot training plus one or two Eq. 5 retraining
// epochs, at the same cost — useful when the training set streams and
// cannot be revisited.
//
// Privacy note: weighted bundling changes the DP sensitivity analysis —
// a single record's contribution is no longer bounded by ‖H‖ but by
// (1+max weight)·‖H‖ ≤ 2‖H‖ per update. OnlineTrain reports the observed
// worst-case single-sample ℓ2 contribution so a privatizer can calibrate
// against it honestly.
func OnlineTrain(m *Model, encoded [][]float64, labels []int) (maxContribution float64, err error) {
	if len(encoded) != len(labels) {
		return 0, fmt.Errorf("hdc: OnlineTrain got %d encodings but %d labels", len(encoded), len(labels))
	}
	for i, h := range encoded {
		if len(h) != m.Dim() {
			return 0, fmt.Errorf("hdc: OnlineTrain encoding %d has dim %d, want %d", i, len(h), m.Dim())
		}
		want := labels[i]
		if want < 0 || want >= m.NumClasses() {
			return 0, fmt.Errorf("hdc: OnlineTrain label %d out of range", want)
		}
		scores := m.Scores(h)
		pred := vecmath.ArgMax(scores)
		hNorm := vecmath.Norm2(h)
		var contribution float64
		wTrue := 1 - m.Cosine(h, want)
		if wTrue < 0 {
			wTrue = 0
		}
		if wTrue > 1 {
			// Anti-correlated sample: clamp per the standard formulation.
			wTrue = 1
		}
		addScaled(m, want, wTrue, h)
		contribution = wTrue * hNorm
		if pred != want && pred >= 0 {
			wPred := 1 - m.Cosine(h, pred)
			if wPred < 0 {
				wPred = 0
			}
			if wPred > 1 {
				wPred = 1
			}
			subScaled(m, pred, wPred, h)
			contribution += wPred * hNorm
		}
		if contribution > maxContribution {
			maxContribution = contribution
		}
	}
	return maxContribution, nil
}

// addScaled and subScaled update a class vector with a weighted encoding,
// keeping the model's caches coherent. Counts track whole samples, so
// weighted updates count as one add (the bundle-size semantics the
// inversion attack divides by remain approximate under online training —
// another reason released online models still need the Gaussian mechanism).
func addScaled(m *Model, l int, w float64, h []float64) {
	if w == 0 {
		return
	}
	c := m.Class(l)
	for j, v := range h {
		c[j] += w * v
	}
	m.counts[l]++
	m.Invalidate(l)
}

func subScaled(m *Model, l int, w float64, h []float64) {
	if w == 0 {
		return
	}
	c := m.Class(l)
	for j, v := range h {
		c[j] -= w * v
	}
	m.counts[l]--
	m.Invalidate(l)
}
