package hdc

import (
	"fmt"
	"math"
	"sync/atomic"

	"privehd/internal/intscore"
	"privehd/internal/vecmath"
)

// Model is the set of class hypervectors ~C_l of paper Eq. 3. Class vectors
// are kept as raw (unnormalized) bundles; inference divides by the cached
// class norm, implementing the Eq. 4 simplification that drops the
// query-norm factor shared by every class.
type Model struct {
	dim     int
	classes [][]float64
	counts  []int // training vectors bundled per class, for diagnostics
	norms   []float64
	dirty   []bool

	// packed is the integer-domain scoring engine over the class vectors,
	// derived by Precompute and dropped by any mutation — the same
	// freshness discipline as the norm caches, but tracked with an atomic
	// pointer so concurrent readers never see a half-prepared engine.
	packed atomic.Pointer[intscore.Engine]
}

// NewModel returns an empty model with the given number of classes and
// hypervector dimensionality.
func NewModel(numClasses, dim int) *Model {
	if numClasses <= 0 || dim <= 0 {
		panic(fmt.Sprintf("hdc: NewModel(%d, %d): arguments must be positive", numClasses, dim))
	}
	m := &Model{
		dim:     dim,
		classes: make([][]float64, numClasses),
		counts:  make([]int, numClasses),
		norms:   make([]float64, numClasses),
		dirty:   make([]bool, numClasses),
	}
	for i := range m.classes {
		m.classes[i] = make([]float64, dim)
		m.dirty[i] = true
	}
	return m
}

// NumClasses returns the number of classes.
func (m *Model) NumClasses() int { return len(m.classes) }

// Dim returns the hypervector dimensionality.
func (m *Model) Dim() int { return m.dim }

// Count returns how many encodings have been bundled into class l (adds
// minus removes).
func (m *Model) Count(l int) int { return m.counts[l] }

// Class returns the raw class hypervector for label l. The returned slice
// is the model's backing storage: mutating it requires calling Invalidate.
func (m *Model) Class(l int) []float64 { return m.classes[l] }

// Invalidate marks class l's cached norm stale after external mutation
// (pruning and the DP privatizer edit class vectors in place).
func (m *Model) Invalidate(l int) {
	m.dirty[l] = true
	m.packed.Store(nil)
}

// InvalidateAll marks every cached norm stale.
func (m *Model) InvalidateAll() {
	for l := range m.dirty {
		m.dirty[l] = true
	}
	m.packed.Store(nil)
}

// Add bundles encoding h into class l (Eq. 3 / first half of Eq. 5).
func (m *Model) Add(l int, h []float64) {
	if len(h) != m.dim {
		panic(ErrDimension)
	}
	vecmath.Add(m.classes[l], h)
	m.counts[l]++
	m.dirty[l] = true
	m.packed.Store(nil)
}

// Sub removes encoding h from class l (second half of Eq. 5).
func (m *Model) Sub(l int, h []float64) {
	if len(h) != m.dim {
		panic(ErrDimension)
	}
	vecmath.Sub(m.classes[l], h)
	m.counts[l]--
	m.dirty[l] = true
	m.packed.Store(nil)
}

// norm returns the cached ℓ2 norm of class l, refreshing it if stale.
func (m *Model) norm(l int) float64 {
	if m.dirty[l] {
		m.norms[l] = vecmath.Norm2(m.classes[l])
		m.dirty[l] = false
	}
	return m.norms[l]
}

// Precompute refreshes every cached class norm so that subsequent Scores and
// Predict calls are read-only — a requirement for serving one model from
// many goroutines — and derives the integer-domain scoring engine for
// packed queries (PackedScorer). Mutating the model (Add, Sub, Invalidate)
// after Precompute reintroduces lazy refresh, drops the engine, and is not
// safe concurrently with inference.
func (m *Model) Precompute() {
	for l := range m.classes {
		m.norm(l)
	}
	m.packed.Store(intscore.Prepare(m.classes))
}

// PackedScorer returns the integer scoring engine derived by the last
// Precompute, or nil if the model was mutated (or never precomputed) since.
// The engine is immutable and safe for concurrent use.
func (m *Model) PackedScorer() *intscore.Engine { return m.packed.Load() }

// Scores returns the norm-adjusted similarity H·C_l/‖C_l‖ for every class.
// Per Eq. 4 the query-norm factor is identical across classes and omitted,
// so Scores are proportional to cosine similarity. Classes with zero norm
// score −Inf so they never win the argmax.
func (m *Model) Scores(h []float64) []float64 {
	return m.ScoresInto(h, make([]float64, len(m.classes)))
}

// ScoresInto is Scores writing into a caller-provided NumClasses-length
// buffer — the allocation-free form for pooled serving hot paths. It
// returns out.
func (m *Model) ScoresInto(h, out []float64) []float64 {
	if len(h) != m.dim {
		panic(ErrDimension)
	}
	if len(out) != len(m.classes) {
		panic(fmt.Sprintf("hdc: ScoresInto buffer has %d slots, model has %d classes",
			len(out), len(m.classes)))
	}
	for l := range m.classes {
		n := m.norm(l)
		if n == 0 {
			out[l] = math.Inf(-1)
			continue
		}
		out[l] = vecmath.Dot(h, m.classes[l]) / n
	}
	return out
}

// ScoresPackedInto is ScoresInto for a packed small-alphabet query: scores
// are computed in the integer domain on the engine the last Precompute
// derived (bit-identical to ScoresInto on the float64 expansion of q — see
// the intscore package for the exactness argument), without ever expanding
// the query. On a model mutated since Precompute it falls back to scoring
// the packed symbols directly against the float class vectors — still no
// expansion, still bit-identical, but with the lazy norm refresh that makes
// it unsafe for concurrent use until the next Precompute.
func (m *Model) ScoresPackedInto(q []int8, out []float64) []float64 {
	if len(q) != m.dim {
		panic(ErrDimension)
	}
	if len(out) != len(m.classes) {
		panic(fmt.Sprintf("hdc: ScoresPackedInto buffer has %d slots, model has %d classes",
			len(out), len(m.classes)))
	}
	if e := m.packed.Load(); e != nil {
		return e.ScoresPackedInto(q, out)
	}
	for l := range m.classes {
		n := m.norm(l)
		if n == 0 {
			out[l] = math.Inf(-1)
			continue
		}
		out[l] = intscore.DotPacked(q, m.classes[l]) / n
	}
	return out
}

// PredictPacked returns the label with the highest similarity score for a
// packed query. On a precomputed model it runs entirely on pooled engine
// scratch — zero heap allocations per call.
func (m *Model) PredictPacked(q []int8) int {
	if len(q) != m.dim {
		panic(ErrDimension)
	}
	if e := m.packed.Load(); e != nil {
		return e.PredictPacked(q)
	}
	return vecmath.ArgMax(m.ScoresPackedInto(q, make([]float64, len(m.classes))))
}

// Predict returns the label with the highest similarity score for the
// encoded query h.
func (m *Model) Predict(h []float64) int {
	return vecmath.ArgMax(m.Scores(h))
}

// Cosine returns the exact cosine similarity δ(H, C_l) of Eq. 4 (including
// the query norm), used by the information-retention experiment (Fig. 3).
func (m *Model) Cosine(h []float64, l int) float64 {
	if len(h) != m.dim {
		panic(ErrDimension)
	}
	return vecmath.Cosine(h, m.classes[l])
}

// Slice returns a new model holding classes [classOff, classOff+classCount)
// restricted to dimensions [dimOff, dimOff+dimLen) — the shard a replica
// serves when one logical model is split across a fleet. The slice is a
// deep copy (mutating it never touches the parent) and is not precomputed;
// registering it derives its own scoring engine over the sub-ranges.
// Counts carry over so diagnostics still report training volume.
func (m *Model) Slice(dimOff, dimLen, classOff, classCount int) *Model {
	if dimOff < 0 || dimLen <= 0 || dimOff+dimLen > m.dim {
		panic(fmt.Sprintf("hdc: Slice dims [%d:%d) outside model dim %d", dimOff, dimOff+dimLen, m.dim))
	}
	if classOff < 0 || classCount <= 0 || classOff+classCount > len(m.classes) {
		panic(fmt.Sprintf("hdc: Slice classes [%d:%d) outside model's %d classes",
			classOff, classOff+classCount, len(m.classes)))
	}
	s := NewModel(classCount, dimLen)
	for k := 0; k < classCount; k++ {
		copy(s.classes[k], m.classes[classOff+k][dimOff:dimOff+dimLen])
		s.counts[k] = m.counts[classOff+k]
	}
	return s
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := NewModel(len(m.classes), m.dim)
	for l := range m.classes {
		copy(c.classes[l], m.classes[l])
		c.counts[l] = m.counts[l]
	}
	return c
}
