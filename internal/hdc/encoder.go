package hdc

import (
	"fmt"
	"runtime"
	"sync"

	"privehd/internal/bitvec"
	"privehd/internal/hrand"
)

// ScalarEncoder implements paper Eq. 2a:
//
//	~H = Σ_k f(v_k) · ~B_k
//
// Each feature is quantized to its level value f ∈ F and multiplied into the
// corresponding bipolar base hypervector. The encoding is linear in the
// feature values, which is exactly what the Eq. 9–10 reconstruction attack
// exploits.
type ScalarEncoder struct {
	cfg  Config
	item *ItemMemory
}

// NewScalarEncoder builds a scalar (Eq. 2a) encoder for the configuration.
func NewScalarEncoder(cfg Config) (*ScalarEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := hrand.New(cfg.Seed)
	return &ScalarEncoder{
		cfg:  cfg,
		item: NewItemMemory(src.Split(0), cfg.Features, cfg.Dim),
	}, nil
}

// Dim returns D_hv.
func (e *ScalarEncoder) Dim() int { return e.cfg.Dim }

// NumFeatures returns D_iv.
func (e *ScalarEncoder) NumFeatures() int { return e.cfg.Features }

// Levels returns ℓ_iv.
func (e *ScalarEncoder) Levels() int { return e.cfg.Levels }

// Base returns base hypervector B_k as shared ±1 floats.
func (e *ScalarEncoder) Base(k int) []float64 { return e.item.Floats(k) }

// Encode returns the Eq. 2a encoding of the given normalized features.
// It panics if len(features) != NumFeatures().
func (e *ScalarEncoder) Encode(features []float64) []float64 {
	return e.EncodeInto(features, make([]float64, e.cfg.Dim))
}

// EncodeInto is Encode writing into a caller-provided Dim-length buffer —
// the allocation-free form for pooled serving hot paths. It returns h.
func (e *ScalarEncoder) EncodeInto(features, h []float64) []float64 {
	if len(features) != e.cfg.Features {
		panic(fmt.Sprintf("hdc: ScalarEncoder.Encode got %d features, want %d",
			len(features), e.cfg.Features))
	}
	if len(h) != e.cfg.Dim {
		panic(fmt.Sprintf("hdc: ScalarEncoder.EncodeInto buffer has dim %d, want %d",
			len(h), e.cfg.Dim))
	}
	for j := range h {
		h[j] = 0
	}
	for k, v := range features {
		f := LevelValue(LevelIndex(v, e.cfg.Levels), e.cfg.Levels)
		if f == 0 {
			continue
		}
		base := e.item.Floats(k)
		for j, b := range base {
			h[j] += f * b
		}
	}
	return h
}

// LevelEncoder implements paper Eq. 2b:
//
//	~H = Σ_k ~L_{v_k} ⊙ ~B_k
//
// The level hypervector associated with each feature's quantization level is
// XNOR-multiplied with the feature's base hypervector and the ±1 products
// are accumulated. This is the encoding the FPGA implementation adopts
// ("better optimization opportunity") because every partial product is a
// single bit.
type LevelEncoder struct {
	cfg   Config
	item  *ItemMemory
	level *LevelMemory
}

// NewLevelEncoder builds a level (Eq. 2b) encoder for the configuration.
func NewLevelEncoder(cfg Config) (*LevelEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := hrand.New(cfg.Seed)
	return &LevelEncoder{
		cfg:   cfg,
		item:  NewItemMemory(src.Split(0), cfg.Features, cfg.Dim),
		level: NewLevelMemory(src.Split(1), cfg.Levels, cfg.Dim),
	}, nil
}

// Dim returns D_hv.
func (e *LevelEncoder) Dim() int { return e.cfg.Dim }

// NumFeatures returns D_iv.
func (e *LevelEncoder) NumFeatures() int { return e.cfg.Features }

// Levels returns ℓ_iv.
func (e *LevelEncoder) Levels() int { return e.cfg.Levels }

// Base returns base hypervector B_k as shared ±1 floats.
func (e *LevelEncoder) Base(k int) []float64 { return e.item.Floats(k) }

// LevelVector returns level hypervector L_i as shared ±1 floats.
func (e *LevelEncoder) LevelVector(i int) []float64 { return e.level.Floats(i) }

// Encode returns the Eq. 2b encoding of the given normalized features.
// It panics if len(features) != NumFeatures().
func (e *LevelEncoder) Encode(features []float64) []float64 {
	return e.EncodeInto(features, make([]float64, e.cfg.Dim))
}

// EncodeInto is Encode writing into a caller-provided Dim-length buffer —
// the allocation-free form for pooled serving hot paths. It returns h.
func (e *LevelEncoder) EncodeInto(features, h []float64) []float64 {
	if len(features) != e.cfg.Features {
		panic(fmt.Sprintf("hdc: LevelEncoder.Encode got %d features, want %d",
			len(features), e.cfg.Features))
	}
	if len(h) != e.cfg.Dim {
		panic(fmt.Sprintf("hdc: LevelEncoder.EncodeInto buffer has dim %d, want %d",
			len(h), e.cfg.Dim))
	}
	for j := range h {
		h[j] = 0
	}
	for k, v := range features {
		lvl := e.level.Packed(LevelIndex(v, e.cfg.Levels))
		bitvec.AccumulateXnorInto(lvl, e.item.Packed(k), h)
	}
	return h
}

// BitPlanes returns, for each feature k, the packed ±1 partial product
// ~L_{v_k} ⊙ ~B_k. The element-wise popcount majority of these planes is
// the sign-quantized encoding — the exact computation the Fig. 7a LUT
// circuit performs. The fpga package consumes this.
func (e *LevelEncoder) BitPlanes(features []float64) []*bitvec.Vector {
	if len(features) != e.cfg.Features {
		panic(fmt.Sprintf("hdc: LevelEncoder.BitPlanes got %d features, want %d",
			len(features), e.cfg.Features))
	}
	planes := make([]*bitvec.Vector, len(features))
	for k, v := range features {
		lvl := e.level.Packed(LevelIndex(v, e.cfg.Levels))
		planes[k] = bitvec.Xnor(lvl, e.item.Packed(k))
	}
	return planes
}

// IntoEncoder is implemented by encoders that can encode into a reused
// buffer; both paper encoders do.
type IntoEncoder interface {
	Encoder
	// EncodeInto encodes into the caller's Dim-length buffer and returns it.
	EncodeInto(features, h []float64) []float64
}

// EncodeInto encodes with enc into the caller's buffer when the encoder
// supports it, falling back to a plain (allocating) Encode otherwise.
func EncodeInto(enc Encoder, features, h []float64) []float64 {
	if ie, ok := enc.(IntoEncoder); ok {
		return ie.EncodeInto(features, h)
	}
	return enc.Encode(features)
}

// EncodeBatch encodes every row of X concurrently and returns the encodings
// in order. workers <= 0 selects GOMAXPROCS. The encoder must be safe for
// concurrent reads, which both paper encoders are after construction
// (warmed caches); EncodeBatch warms them before fanning out.
func EncodeBatch(enc Encoder, X [][]float64, workers int) [][]float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(X) == 0 {
		return nil
	}
	warmEncoder(enc)
	out := make([][]float64, len(X))
	var wg sync.WaitGroup
	next := make(chan int, len(X))
	for i := range X {
		next <- i
	}
	close(next)
	if workers > len(X) {
		workers = len(X)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = enc.Encode(X[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// warmEncoder forces lazy float caches to materialize so concurrent Encode
// calls only read shared state.
func warmEncoder(enc Encoder) {
	switch e := enc.(type) {
	case *ScalarEncoder:
		for k := 0; k < e.cfg.Features; k++ {
			e.item.Floats(k)
		}
	case *LevelEncoder:
		// LevelEncoder.Encode touches only packed vectors, which are
		// immutable after construction; nothing to warm.
	case interface{ Warm() }:
		e.Warm()
	}
}
