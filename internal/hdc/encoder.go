package hdc

import (
	"fmt"
	"runtime"
	"sync"

	"privehd/internal/bitvec"
	"privehd/internal/encslice"
	"privehd/internal/hrand"
	"privehd/internal/par"
)

// ScalarEncoder implements paper Eq. 2a:
//
//	~H = Σ_k f(v_k) · ~B_k
//
// Each feature is quantized to its level value f ∈ F and multiplied into the
// corresponding bipolar base hypervector. The encoding is linear in the
// feature values, which is exactly what the Eq. 9–10 reconstruction attack
// exploits.
//
// The sum is evaluated exactly: f(v) = lv/(ℓ−1) for an integer level index
// lv, so (ℓ−1)·~H is an integer vector the bit-sliced engine computes with
// popcount arithmetic, finished by a single float64 division. (The
// pre-engine implementation accumulated the rounded float level values per
// feature instead; results agree to within one unit in the last place per
// feature, and the exact form is the better reference.)
type ScalarEncoder struct {
	cfg    Config
	item   *ItemMemory
	engine *encslice.Engine // nil → reference float loop (unsupported geometry)
}

// NewScalarEncoder builds a scalar (Eq. 2a) encoder for the configuration.
func NewScalarEncoder(cfg Config) (*ScalarEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := hrand.New(cfg.Seed)
	e := &ScalarEncoder{
		cfg:  cfg,
		item: NewItemMemory(src.Split(0), cfg.Features, cfg.Dim),
	}
	// Geometry outside the engine's limits (gigantic level counts) keeps
	// the reference loop; the engine error is deliberately dropped.
	e.engine, _ = encslice.NewScalar(cfg.Dim, cfg.Levels, packedWords(e.item))
	return e, nil
}

// Dim returns D_hv.
func (e *ScalarEncoder) Dim() int { return e.cfg.Dim }

// NumFeatures returns D_iv.
func (e *ScalarEncoder) NumFeatures() int { return e.cfg.Features }

// Levels returns ℓ_iv.
func (e *ScalarEncoder) Levels() int { return e.cfg.Levels }

// Base returns base hypervector B_k as shared ±1 floats.
func (e *ScalarEncoder) Base(k int) []float64 { return e.item.Floats(k) }

// Encode returns the Eq. 2a encoding of the given normalized features.
// It panics if len(features) != NumFeatures().
func (e *ScalarEncoder) Encode(features []float64) []float64 {
	return e.EncodeInto(features, make([]float64, e.cfg.Dim))
}

// EncodeInto is Encode writing into a caller-provided Dim-length buffer —
// the allocation-free form for pooled serving hot paths. It returns h.
func (e *ScalarEncoder) EncodeInto(features, h []float64) []float64 {
	e.check(features, len(h))
	if e.engine != nil {
		p := getLvi(e.cfg.Features)
		e.engine.EncodeInto(fillLvi(*p, features, e.cfg.Levels), h)
		putLvi(p)
		return h
	}
	return e.encodeRefInto(features, h)
}

// encodeRefInto is the reference Eq. 2a loop: the exact integer numerator
// accumulated per feature (every partial sum is a small integer, so the
// float64 arithmetic is exact and bit-identical to the engine), divided
// once by ℓ−1. It is the fallback for geometries the engine rejects and
// the oracle the equivalence tests compare the engine against.
func (e *ScalarEncoder) encodeRefInto(features, h []float64) []float64 {
	for j := range h {
		h[j] = 0
	}
	for k, v := range features {
		// The level-value numerator LevelValue·(ℓ−1) is the index itself.
		lv := float64(LevelIndex(v, e.cfg.Levels))
		if lv == 0 {
			continue
		}
		base := e.item.Floats(k)
		for j, b := range base {
			h[j] += lv * b
		}
	}
	d := float64(e.cfg.Levels - 1)
	for j := range h {
		h[j] /= d
	}
	return h
}

// EncodePackedInto fuses encode and quantize on the bit-sliced engine,
// writing the packed −2…+1 query for the scheme into dst (length Dim) —
// bit-identical to encoding and then quantizing the float hypervector. It
// reports false (writing nothing) when no engine is available for the
// geometry or the scheme is SchemeNone; callers then take the float path.
func (e *ScalarEncoder) EncodePackedInto(features []float64, scheme encslice.Scheme, dst []int8) bool {
	if e.engine == nil || scheme == encslice.SchemeNone {
		return false
	}
	e.check(features, len(dst))
	p := getLvi(e.cfg.Features)
	e.engine.EncodePackedInto(fillLvi(*p, features, e.cfg.Levels), scheme, dst)
	putLvi(p)
	return true
}

// encodeRows encodes len(X) feature rows into the contiguous buffer h
// (len(X)×Dim) on the engine's batch kernel; false means no engine.
func (e *ScalarEncoder) encodeRows(X [][]float64, h []float64) bool {
	return encodeRowsOn(e.engine, e.cfg, X, h)
}

func (e *ScalarEncoder) check(features []float64, dimLen int) {
	if len(features) != e.cfg.Features {
		panic(fmt.Sprintf("hdc: ScalarEncoder.Encode got %d features, want %d",
			len(features), e.cfg.Features))
	}
	if dimLen != e.cfg.Dim {
		panic(fmt.Sprintf("hdc: ScalarEncoder.EncodeInto buffer has dim %d, want %d",
			dimLen, e.cfg.Dim))
	}
}

// LevelEncoder implements paper Eq. 2b:
//
//	~H = Σ_k ~L_{v_k} ⊙ ~B_k
//
// The level hypervector associated with each feature's quantization level is
// XNOR-multiplied with the feature's base hypervector and the ±1 products
// are accumulated. This is the encoding the FPGA implementation adopts
// ("better optimization opportunity") because every partial product is a
// single bit — which is also why the bit-sliced engine computes it with
// XNOR + carry-save popcount accumulation instead of a float64 MAC.
type LevelEncoder struct {
	cfg    Config
	item   *ItemMemory
	level  *LevelMemory
	engine *encslice.Engine // nil → reference AccumulateXnorInto loop
}

// NewLevelEncoder builds a level (Eq. 2b) encoder for the configuration.
func NewLevelEncoder(cfg Config) (*LevelEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := hrand.New(cfg.Seed)
	e := &LevelEncoder{
		cfg:   cfg,
		item:  NewItemMemory(src.Split(0), cfg.Features, cfg.Dim),
		level: NewLevelMemory(src.Split(1), cfg.Levels, cfg.Dim),
	}
	lvl := make([][]uint64, cfg.Levels)
	for i := range lvl {
		lvl[i] = e.level.Packed(i).Words()
	}
	e.engine, _ = encslice.NewLevel(cfg.Dim, packedWords(e.item), lvl)
	return e, nil
}

// Dim returns D_hv.
func (e *LevelEncoder) Dim() int { return e.cfg.Dim }

// NumFeatures returns D_iv.
func (e *LevelEncoder) NumFeatures() int { return e.cfg.Features }

// Levels returns ℓ_iv.
func (e *LevelEncoder) Levels() int { return e.cfg.Levels }

// Base returns base hypervector B_k as shared ±1 floats.
func (e *LevelEncoder) Base(k int) []float64 { return e.item.Floats(k) }

// LevelVector returns level hypervector L_i as shared ±1 floats.
func (e *LevelEncoder) LevelVector(i int) []float64 { return e.level.Floats(i) }

// Encode returns the Eq. 2b encoding of the given normalized features.
// It panics if len(features) != NumFeatures().
func (e *LevelEncoder) Encode(features []float64) []float64 {
	return e.EncodeInto(features, make([]float64, e.cfg.Dim))
}

// EncodeInto is Encode writing into a caller-provided Dim-length buffer —
// the allocation-free form for pooled serving hot paths. It returns h.
func (e *LevelEncoder) EncodeInto(features, h []float64) []float64 {
	e.check(features, len(h))
	if e.engine != nil {
		p := getLvi(e.cfg.Features)
		e.engine.EncodeInto(fillLvi(*p, features, e.cfg.Levels), h)
		putLvi(p)
		return h
	}
	return e.encodeRefInto(features, h)
}

// encodeRefInto is the reference Eq. 2b loop (word-expanding XNOR
// accumulation): the fallback for geometries the engine rejects and the
// oracle the equivalence tests compare the engine against. Both paths add
// only ±1 terms, so they are bit-identical.
func (e *LevelEncoder) encodeRefInto(features, h []float64) []float64 {
	for j := range h {
		h[j] = 0
	}
	for k, v := range features {
		lvl := e.level.Packed(LevelIndex(v, e.cfg.Levels))
		bitvec.AccumulateXnorInto(lvl, e.item.Packed(k), h)
	}
	return h
}

// EncodePackedInto fuses encode and quantize on the bit-sliced engine; see
// ScalarEncoder.EncodePackedInto.
func (e *LevelEncoder) EncodePackedInto(features []float64, scheme encslice.Scheme, dst []int8) bool {
	if e.engine == nil || scheme == encslice.SchemeNone {
		return false
	}
	e.check(features, len(dst))
	p := getLvi(e.cfg.Features)
	e.engine.EncodePackedInto(fillLvi(*p, features, e.cfg.Levels), scheme, dst)
	putLvi(p)
	return true
}

// encodeRows encodes len(X) feature rows into the contiguous buffer h on
// the engine's batch kernel, which streams each 64-dimension column of the
// item memory once for the whole chunk of rows.
func (e *LevelEncoder) encodeRows(X [][]float64, h []float64) bool {
	return encodeRowsOn(e.engine, e.cfg, X, h)
}

func (e *LevelEncoder) check(features []float64, dimLen int) {
	if len(features) != e.cfg.Features {
		panic(fmt.Sprintf("hdc: LevelEncoder.Encode got %d features, want %d",
			len(features), e.cfg.Features))
	}
	if dimLen != e.cfg.Dim {
		panic(fmt.Sprintf("hdc: LevelEncoder.EncodeInto buffer has dim %d, want %d",
			dimLen, e.cfg.Dim))
	}
}

// BitPlanes returns, for each feature k, the packed ±1 partial product
// ~L_{v_k} ⊙ ~B_k. The element-wise popcount majority of these planes is
// the sign-quantized encoding — the exact computation the Fig. 7a LUT
// circuit performs. The fpga package consumes this.
func (e *LevelEncoder) BitPlanes(features []float64) []*bitvec.Vector {
	if len(features) != e.cfg.Features {
		panic(fmt.Sprintf("hdc: LevelEncoder.BitPlanes got %d features, want %d",
			len(features), e.cfg.Features))
	}
	planes := make([]*bitvec.Vector, len(features))
	for k, v := range features {
		lvl := e.level.Packed(LevelIndex(v, e.cfg.Levels))
		planes[k] = bitvec.Xnor(lvl, e.item.Packed(k))
	}
	return planes
}

// packedWords collects the item memory's packed word slices for engine
// construction (the engine copies them into its transposed layout).
func packedWords(m *ItemMemory) [][]uint64 {
	words := make([][]uint64, m.Len())
	for k := range words {
		words[k] = m.Packed(k).Words()
	}
	return words
}

// lviPool recycles the per-call level-index scratch shared by every
// engine-backed encode path.
var lviPool sync.Pool

func getLvi(n int) *[]uint16 {
	if p, ok := lviPool.Get().(*[]uint16); ok && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]uint16, n)
	return &s
}

func putLvi(p *[]uint16) { lviPool.Put(p) }

// fillLvi writes each feature's quantization level index into buf.
func fillLvi(buf []uint16, features []float64, levels int) []uint16 {
	for k, v := range features {
		buf[k] = uint16(LevelIndex(v, levels))
	}
	return buf
}

// encodeRowsOn runs the engine's multi-row batch kernel for a chunk of
// feature rows, computing all level indices up front into pooled scratch.
func encodeRowsOn(engine *encslice.Engine, cfg Config, X [][]float64, h []float64) bool {
	if engine == nil {
		return false
	}
	F := cfg.Features
	p := getLvi(len(X) * F)
	lvi := *p
	for r, x := range X {
		if len(x) != F {
			panic(fmt.Sprintf("hdc: EncodeBatch row has %d features, want %d", len(x), F))
		}
		fillLvi(lvi[r*F:(r+1)*F], x, cfg.Levels)
	}
	engine.EncodeBatchInto(lvi, len(X), h)
	putLvi(p)
	return true
}

// IntoEncoder is implemented by encoders that can encode into a reused
// buffer; both paper encoders do.
type IntoEncoder interface {
	Encoder
	// EncodeInto encodes into the caller's Dim-length buffer and returns it.
	EncodeInto(features, h []float64) []float64
}

// PackedEncoder is implemented by encoders with a bit-sliced engine that
// can emit the quantized, packed −2…+1 query directly from integer counts —
// the fused fast path serving Predict runs per query.
type PackedEncoder interface {
	Encoder
	// EncodePackedInto writes the packed quantization of the encoding into
	// dst (length Dim) and reports whether the fused path was available;
	// on false, nothing is written and the caller must encode + quantize
	// through the float path.
	EncodePackedInto(features []float64, scheme encslice.Scheme, dst []int8) bool
}

// rowsEncoder is the internal batch hook: encode a chunk of rows into one
// contiguous buffer, amortizing item-memory passes across the chunk.
type rowsEncoder interface {
	encodeRows(X [][]float64, h []float64) bool
}

// EncodeInto encodes with enc into the caller's buffer when the encoder
// supports it, falling back to a plain (allocating) Encode otherwise.
func EncodeInto(enc Encoder, features, h []float64) []float64 {
	if ie, ok := enc.(IntoEncoder); ok {
		return ie.EncodeInto(features, h)
	}
	return enc.Encode(features)
}

// encodeBatchChunk is how many rows one worker claims at a time: large
// enough for the engine's batch kernel to amortize each item-memory column
// across the chunk, small enough to keep workers balanced on short batches.
const encodeBatchChunk = 8

// EncodeBatch encodes every row of X concurrently and returns the encodings
// in order. workers <= 0 selects GOMAXPROCS. The encoder must be safe for
// concurrent reads, which both paper encoders are after construction
// (warmed caches); EncodeBatch warms them before fanning out.
//
// For IntoEncoders the returned rows are views into one contiguous backing
// array (len(X)·Dim floats, one allocation) and workers claim fixed-size
// chunks off an atomic cursor, encoding through EncodeInto — or through the
// bit-sliced engine's multi-row kernel when the encoder has one. Callers
// must not append to the returned rows.
func EncodeBatch(enc Encoder, X [][]float64, workers int) [][]float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(X) == 0 {
		return nil
	}
	warmEncoder(enc)
	out := make([][]float64, len(X))
	ie, hasInto := enc.(IntoEncoder)
	var backing []float64
	var re rowsEncoder
	dim := enc.Dim()
	if hasInto {
		backing = make([]float64, len(X)*dim)
		for i := range out {
			out[i] = backing[i*dim : (i+1)*dim : (i+1)*dim]
		}
		re, _ = enc.(rowsEncoder)
	}
	par.ForEachChunk(len(X), encodeBatchChunk, workers, func(start, end int) {
		if !hasInto {
			for i := start; i < end; i++ {
				out[i] = enc.Encode(X[i])
			}
			return
		}
		rows := X[start:end]
		if re != nil && re.encodeRows(rows, backing[start*dim:end*dim]) {
			return
		}
		for i, x := range rows {
			ie.EncodeInto(x, out[start+i])
		}
	})
	return out
}

// warmEncoder forces lazy float caches to materialize so concurrent Encode
// calls only read shared state.
func warmEncoder(enc Encoder) {
	switch e := enc.(type) {
	case *ScalarEncoder:
		if e.engine == nil {
			// Only the reference loop touches the lazily-cached float
			// bases; the engine reads packed words, immutable after
			// construction.
			for k := 0; k < e.cfg.Features; k++ {
				e.item.Floats(k)
			}
		}
	case *LevelEncoder:
		// LevelEncoder paths touch only packed vectors, which are
		// immutable after construction; nothing to warm.
	case interface{ Warm() }:
		e.Warm()
	}
}
