package hdc

import (
	"math"
	"testing"

	"privehd/internal/hrand"
)

func TestOnlineTrainLearnsSeparableTask(t *testing.T) {
	cfg := Config{Dim: 2000, Features: 40, Levels: 16, Seed: 201}
	enc := mustLevel(t, cfg)
	X, y := syntheticTask(t, 202, 4, cfg.Features, 30, 0.1)
	encoded := EncodeBatch(enc, X, 0)
	m := NewModel(4, cfg.Dim)
	if _, err := OnlineTrain(m, encoded, y); err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(m, encoded, y); acc < 0.9 {
		t.Errorf("online accuracy = %v, want ≥ 0.9", acc)
	}
}

func TestOnlineTrainBeatsOneShotOnHardTask(t *testing.T) {
	// The point of similarity weighting: on a noisy task one online pass
	// should match or beat plain one-shot bundling.
	cfg := Config{Dim: 1000, Features: 30, Levels: 8, Seed: 203}
	enc := mustLevel(t, cfg)
	X, y := syntheticTask(t, 204, 6, cfg.Features, 40, 0.3)
	encoded := EncodeBatch(enc, X, 0)

	oneShot, err := Train(encoded, y, 6, cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	online := NewModel(6, cfg.Dim)
	if _, err := OnlineTrain(online, encoded, y); err != nil {
		t.Fatal(err)
	}
	accOneShot := Evaluate(oneShot, encoded, y)
	accOnline := Evaluate(online, encoded, y)
	if accOnline < accOneShot-0.05 {
		t.Errorf("online %v clearly below one-shot %v", accOnline, accOneShot)
	}
}

func TestOnlineTrainContributionBound(t *testing.T) {
	// The reported worst-case single-sample contribution must bound 2‖H‖
	// and be positive once any update happens.
	cfg := Config{Dim: 500, Features: 20, Levels: 8, Seed: 205}
	enc := mustLevel(t, cfg)
	X, y := syntheticTask(t, 206, 3, cfg.Features, 10, 0.2)
	encoded := EncodeBatch(enc, X, 0)
	m := NewModel(3, cfg.Dim)
	maxContrib, err := OnlineTrain(m, encoded, y)
	if err != nil {
		t.Fatal(err)
	}
	if maxContrib <= 0 {
		t.Error("expected positive contribution after training")
	}
	var worstNorm float64
	for _, h := range encoded {
		var s float64
		for _, v := range h {
			s += v * v
		}
		if s > worstNorm {
			worstNorm = s
		}
	}
	bound := 2 * math.Sqrt(worstNorm)
	if maxContrib > bound+1e-9 {
		t.Errorf("contribution %v exceeds 2·max‖H‖ = %v", maxContrib, bound)
	}
}

func TestOnlineTrainErrors(t *testing.T) {
	m := NewModel(2, 4)
	if _, err := OnlineTrain(m, [][]float64{{1, 2, 3, 4}}, []int{0, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := OnlineTrain(m, [][]float64{{1}}, []int{0}); err == nil {
		t.Error("wrong dim should fail")
	}
	if _, err := OnlineTrain(m, [][]float64{{1, 2, 3, 4}}, []int{7}); err == nil {
		t.Error("bad label should fail")
	}
}

func TestOnlineTrainWeightsShrinkForKnownSamples(t *testing.T) {
	// Feeding the same sample twice: the second update must contribute
	// less (the model already knows it).
	src := hrand.New(207)
	h := src.NormalVec(300, 0, 2)
	m := NewModel(2, 300)
	first, err := OnlineTrain(m, [][]float64{h}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	second, err := OnlineTrain(m, [][]float64{h}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if second >= first {
		t.Errorf("second-pass contribution %v should be below first %v", second, first)
	}
}
