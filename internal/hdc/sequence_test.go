package hdc

import (
	"math"
	"testing"
	"testing/quick"

	"privehd/internal/hrand"
)

func mustSeq(t *testing.T, alphabet, dim, n int, seed uint64) *SequenceEncoder {
	t.Helper()
	e, err := NewSequenceEncoder(hrand.New(seed), alphabet, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewSequenceEncoderValidation(t *testing.T) {
	src := hrand.New(1)
	for _, tc := range []struct{ alphabet, dim, n int }{
		{0, 100, 2}, {4, 0, 2}, {4, 100, 0},
	} {
		if _, err := NewSequenceEncoder(src, tc.alphabet, tc.dim, tc.n); err == nil {
			t.Errorf("NewSequenceEncoder(%v) should fail", tc)
		}
	}
}

func TestSequenceEncodeGeometry(t *testing.T) {
	e := mustSeq(t, 4, 512, 3, 2)
	if e.Dim() != 512 || e.N() != 3 || e.Alphabet() != 4 {
		t.Fatalf("geometry = (%d, %d, %d)", e.Dim(), e.N(), e.Alphabet())
	}
	h, err := e.Encode([]int{0, 1, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 512 {
		t.Fatalf("encoding len = %d", len(h))
	}
	// 3 grams of ±1 values per dim: parity and magnitude bound.
	for j, v := range h {
		if math.Abs(v) > 3 {
			t.Fatalf("dim %d magnitude %v exceeds gram count", j, v)
		}
		if int(math.Abs(v))%2 != 3%2 {
			t.Fatalf("dim %d parity wrong: %v", j, v)
		}
	}
}

func TestSequenceEncodeShortAndInvalid(t *testing.T) {
	e := mustSeq(t, 3, 128, 4, 3)
	h, err := e.Encode([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range h {
		if v != 0 {
			t.Fatal("short sequence should encode to zero vector")
		}
	}
	if _, err := e.Encode([]int{0, 3, 1, 2}); err == nil {
		t.Error("out-of-range symbol should fail")
	}
	if _, err := e.Encode([]int{-1, 0, 1, 2}); err == nil {
		t.Error("negative symbol should fail")
	}
}

func TestSequenceOrderSensitivity(t *testing.T) {
	// The point of position binding: the same multiset in different order
	// must encode differently, while identical sequences match exactly.
	e := mustSeq(t, 5, 4000, 2, 4)
	same, err := e.Similarity([]int{0, 1, 2, 3, 4}, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same-1) > 1e-12 {
		t.Errorf("identical sequences similarity = %v, want 1", same)
	}
	perm, err := e.Similarity([]int{0, 1, 2, 3, 4}, []int{4, 3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if perm > 0.5 {
		t.Errorf("reversed sequence similarity = %v, want well below 1", perm)
	}
}

func TestSequenceSharedPrefixSimilarity(t *testing.T) {
	// Sequences sharing most of their grams must be more similar than
	// unrelated ones.
	e := mustSeq(t, 6, 4000, 3, 5)
	base := []int{0, 1, 2, 3, 4, 5, 0, 1, 2, 3}
	near := append(append([]int{}, base[:9]...), 5) // one symbol changed
	far := []int{5, 5, 0, 0, 3, 3, 1, 1, 4, 4}
	nearSim, err := e.Similarity(base, near)
	if err != nil {
		t.Fatal(err)
	}
	farSim, err := e.Similarity(base, far)
	if err != nil {
		t.Fatal(err)
	}
	if nearSim <= farSim {
		t.Errorf("near similarity %v should exceed far %v", nearSim, farSim)
	}
	if nearSim < 0.5 {
		t.Errorf("near similarity %v unexpectedly low", nearSim)
	}
}

func TestSequenceUnigram(t *testing.T) {
	// n=1 reduces to a bag of symbols: order must NOT matter.
	e := mustSeq(t, 4, 2000, 1, 6)
	a, err := e.Encode([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Encode([]int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("unigram encoding should be order-invariant")
		}
	}
}

func TestSequenceDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		e1 := mustSeqQuick(seed)
		e2 := mustSeqQuick(seed)
		seq := []int{0, 2, 1, 3, 2, 0}
		h1, err1 := e1.Encode(seq)
		h2, err2 := e2.Encode(seq)
		if err1 != nil || err2 != nil {
			return false
		}
		for j := range h1 {
			if h1[j] != h2[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func mustSeqQuick(seed uint64) *SequenceEncoder {
	e, err := NewSequenceEncoder(hrand.New(seed), 4, 256, 2)
	if err != nil {
		panic(err)
	}
	return e
}

func TestSequenceClassification(t *testing.T) {
	// End-to-end: classify sequence families with the standard Model —
	// demonstrating that sequence encodings drop into the same pipeline
	// (and therefore the same privacy machinery).
	const dim = 4000
	e := mustSeq(t, 8, dim, 3, 7)
	src := hrand.New(8)
	families := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3},
		{7, 6, 5, 4, 3, 2, 1, 0, 7, 6, 5, 4},
	}
	mutate := func(seq []int) []int {
		out := append([]int(nil), seq...)
		// Flip two random positions.
		for k := 0; k < 2; k++ {
			out[src.IntN(len(out))] = src.IntN(8)
		}
		return out
	}
	m := NewModel(2, dim)
	for c, fam := range families {
		for s := 0; s < 20; s++ {
			h, err := e.Encode(mutate(fam))
			if err != nil {
				t.Fatal(err)
			}
			m.Add(c, h)
		}
	}
	correct := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		c := i % 2
		h, err := e.Encode(mutate(families[c]))
		if err != nil {
			t.Fatal(err)
		}
		if m.Predict(h) == c {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.9 {
		t.Errorf("sequence classification accuracy = %v, want ≥ 0.9", acc)
	}
}
