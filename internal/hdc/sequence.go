package hdc

import (
	"fmt"

	"privehd/internal/bitvec"
	"privehd/internal/hrand"
	"privehd/internal/vecmath"
)

// SequenceEncoder encodes variable-length symbol sequences with the
// standard HD n-gram construction: each symbol has a random bipolar item
// hypervector, position within an n-gram is bound by coordinate rotation
// (the permutation ρ of the HD literature), and the sequence hypervector is
// the bundle of all its n-gram products:
//
//	~H = Σ_i  ρ^{n−1}(~S_{w_i}) ⊙ ρ^{n−2}(~S_{w_{i+1}}) ⊙ … ⊙ ~S_{w_{i+n−1}}
//
// The paper's encodings (Eq. 2) bind features to *spatial* positions with
// per-position base vectors; the n-gram form is its *temporal* counterpart
// (paper §II-A: base hypervectors "retain the spatial or temporal location
// of features"). Sequence encodings are bipolar-valued sums exactly like
// Eq. 2b outputs, so every Prive-HD defence — quantization, masking,
// Gaussian release — applies unchanged; the same holds for the Eq. 10-style
// attack surface.
type SequenceEncoder struct {
	dim     int
	n       int
	symbols []*bitvec.Vector
}

// NewSequenceEncoder builds an n-gram encoder over an alphabet of the given
// size. n is the gram length (n ≥ 1); dim the hypervector dimensionality.
func NewSequenceEncoder(src *hrand.Source, alphabet, dim, n int) (*SequenceEncoder, error) {
	switch {
	case alphabet <= 0:
		return nil, fmt.Errorf("hdc: sequence alphabet must be positive, got %d", alphabet)
	case dim <= 0:
		return nil, fmt.Errorf("hdc: sequence dim must be positive, got %d", dim)
	case n < 1:
		return nil, fmt.Errorf("hdc: gram length must be ≥ 1, got %d", n)
	}
	e := &SequenceEncoder{dim: dim, n: n, symbols: make([]*bitvec.Vector, alphabet)}
	for s := range e.symbols {
		v := bitvec.New(dim)
		for j := 0; j < dim; j++ {
			if src.Uint64()&1 == 1 {
				v.Set(j, true)
			}
		}
		e.symbols[s] = v
	}
	return e, nil
}

// Dim returns the hypervector dimensionality.
func (e *SequenceEncoder) Dim() int { return e.dim }

// N returns the gram length.
func (e *SequenceEncoder) N() int { return e.n }

// Alphabet returns the symbol count.
func (e *SequenceEncoder) Alphabet() int { return len(e.symbols) }

// Symbol returns the item hypervector of symbol s (shared; do not modify).
func (e *SequenceEncoder) Symbol(s int) *bitvec.Vector { return e.symbols[s] }

// Encode returns the n-gram bundle of the sequence. Sequences shorter than
// n yield the zero vector. Symbols out of range cause an error.
func (e *SequenceEncoder) Encode(seq []int) ([]float64, error) {
	for i, s := range seq {
		if s < 0 || s >= len(e.symbols) {
			return nil, fmt.Errorf("hdc: sequence symbol %d at position %d out of range [0,%d)",
				s, i, len(e.symbols))
		}
	}
	h := make([]float64, e.dim)
	for i := 0; i+e.n <= len(seq); i++ {
		gram := bitvec.Rotate(e.symbols[seq[i]], e.n-1)
		for k := 1; k < e.n; k++ {
			gram = bitvec.Xnor(gram, bitvec.Rotate(e.symbols[seq[i+k]], e.n-1-k))
		}
		gram.AccumulateInto(h)
	}
	return h, nil
}

// Similarity returns the cosine similarity of two sequences' encodings —
// a convenience for sequence comparison without building a model.
func (e *SequenceEncoder) Similarity(a, b []int) (float64, error) {
	ha, err := e.Encode(a)
	if err != nil {
		return 0, err
	}
	hb, err := e.Encode(b)
	if err != nil {
		return 0, err
	}
	return vecmath.Cosine(ha, hb), nil
}
