package hdc

import (
	"testing"

	"privehd/internal/hrand"
)

// syntheticTask builds a small separable classification problem: each class
// has a prototype feature vector and samples are noisy copies.
func syntheticTask(t *testing.T, seed uint64, classes, features, perClass int, noise float64) (X [][]float64, y []int) {
	t.Helper()
	src := hrand.New(seed)
	protos := make([][]float64, classes)
	for c := range protos {
		protos[c] = make([]float64, features)
		for i := range protos[c] {
			protos[c][i] = src.Float64()
		}
	}
	for c := 0; c < classes; c++ {
		for s := 0; s < perClass; s++ {
			x := make([]float64, features)
			for i := range x {
				x[i] = protos[c][i] + src.Normal(0, noise)
				if x[i] < 0 {
					x[i] = 0
				}
				if x[i] > 1 {
					x[i] = 1
				}
			}
			X = append(X, x)
			y = append(y, c)
		}
	}
	return X, y
}

func TestTrainAndEvaluateSeparable(t *testing.T) {
	cfg := Config{Dim: 2000, Features: 40, Levels: 16, Seed: 60}
	enc := mustLevel(t, cfg)
	X, y := syntheticTask(t, 61, 4, cfg.Features, 30, 0.05)
	encoded := EncodeBatch(enc, X, 0)
	m, err := Train(encoded, y, 4, cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(m, encoded, y)
	if acc < 0.95 {
		t.Errorf("training accuracy %v too low for separable task", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train([][]float64{{1}}, []int{0, 1}, 2, 1); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := Train([][]float64{{1}}, []int{5}, 2, 1); err == nil {
		t.Error("expected error for out-of-range label")
	}
	if _, err := Train([][]float64{{1, 2}}, []int{0}, 2, 1); err == nil {
		t.Error("expected error for wrong encoding dim")
	}
}

func TestRetrainImprovesNoisyTask(t *testing.T) {
	// On a harder task one-shot bundling mispredicts some training samples;
	// Eq. 5 retraining must not reduce training accuracy below the one-shot
	// model and typically improves it (the Fig. 4 behaviour).
	cfg := Config{Dim: 1000, Features: 30, Levels: 8, Seed: 62}
	enc := mustLevel(t, cfg)
	X, y := syntheticTask(t, 63, 6, cfg.Features, 40, 0.25)
	encoded := EncodeBatch(enc, X, 0)
	m, err := Train(encoded, y, 6, cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	before := Evaluate(m, encoded, y)
	accs := Retrain(m, encoded, y, encoded, y, 5)
	if len(accs) == 0 {
		t.Fatal("Retrain returned no epochs")
	}
	best := accs[0]
	for _, a := range accs {
		if a > best {
			best = a
		}
	}
	if best < before-0.02 {
		t.Errorf("retraining degraded accuracy: before %v, best %v", before, best)
	}
}

func TestRetrainEpochCountsUpdates(t *testing.T) {
	m := NewModel(2, 2)
	m.Add(0, []float64{1, 0})
	m.Add(1, []float64{0, 1})
	// One sample predicted correctly, one wrongly labelled on purpose.
	encoded := [][]float64{{1, 0}, {1, 0}}
	labels := []int{0, 1}
	updates := RetrainEpoch(m, encoded, labels)
	if updates != 1 {
		t.Errorf("updates = %d, want 1", updates)
	}
}

func TestRetrainStopsWhenConverged(t *testing.T) {
	m := NewModel(2, 2)
	m.Add(0, []float64{1, 0})
	m.Add(1, []float64{0, 1})
	encoded := [][]float64{{1, 0}, {0, 1}}
	labels := []int{0, 1}
	accs := Retrain(m, encoded, labels, encoded, labels, 10)
	if len(accs) != 1 {
		t.Errorf("converged retraining ran %d epochs, want 1", len(accs))
	}
	if accs[0] != 1 {
		t.Errorf("accuracy = %v, want 1", accs[0])
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := NewModel(2, 2)
	if got := Evaluate(m, nil, nil); got != 0 {
		t.Errorf("Evaluate(empty) = %v, want 0", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := NewModel(2, 2)
	m.Add(0, []float64{1, 0})
	m.Add(1, []float64{0, 1})
	encoded := [][]float64{{1, 0}, {0, 1}, {1, 0}}
	labels := []int{0, 1, 1} // last one is a true-1 that looks like 0
	cm := ConfusionMatrix(m, encoded, labels)
	if cm[0][0] != 1 || cm[1][1] != 1 || cm[1][0] != 1 || cm[0][1] != 0 {
		t.Errorf("confusion matrix = %v", cm)
	}
}

func TestEncoderAgreement(t *testing.T) {
	// Both paper encodings should solve the same separable task; their
	// accuracies are expected to be comparable (the paper treats them as
	// interchangeable for accuracy, differing in hardware cost).
	X, y := syntheticTask(t, 64, 4, 30, 25, 0.08)
	for name, mk := range map[string]func() Encoder{
		"scalar": func() Encoder { return mustScalar(t, Config{Dim: 2000, Features: 30, Levels: 16, Seed: 65}) },
		"level":  func() Encoder { return mustLevel(t, Config{Dim: 2000, Features: 30, Levels: 16, Seed: 65}) },
	} {
		enc := mk()
		encoded := EncodeBatch(enc, X, 0)
		m, err := Train(encoded, y, 4, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if acc := Evaluate(m, encoded, y); acc < 0.9 {
			t.Errorf("%s encoder accuracy %v too low", name, acc)
		}
	}
}
