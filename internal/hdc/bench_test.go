package hdc

import (
	"testing"

	"privehd/internal/encslice"
	"privehd/internal/hrand"
)

// Kernel benchmarks at the paper's geometry: ISOLET-shaped inputs
// (617 features) into D_hv = 10,000 hypervectors.

func benchFeatures(n int) []float64 {
	src := hrand.New(100)
	x := make([]float64, n)
	for i := range x {
		x[i] = src.Float64()
	}
	return x
}

func BenchmarkLevelEncode617x10k(b *testing.B) {
	enc, err := NewLevelEncoder(Config{Dim: 10000, Features: 617, Levels: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := benchFeatures(617)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Encode(x)
	}
}

func BenchmarkScalarEncode617x10k(b *testing.B) {
	enc, err := NewScalarEncoder(Config{Dim: 10000, Features: 617, Levels: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := benchFeatures(617)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Encode(x)
	}
}

// BenchmarkEncode measures the bit-sliced engine against the reference
// float loops at the serving geometry (617 features → D_hv = 4,000, the
// same shape BenchmarkPipelinePredict runs end to end), plus the fused
// encode→quantize path and the multi-row batch kernel. The *-ref cases are
// the pre-engine implementations, kept as the committed before/after
// record; all engine paths must stay allocation-free.
func BenchmarkEncode(b *testing.B) {
	cfg := Config{Dim: 4000, Features: 617, Levels: 100, Seed: 1}
	le, err := NewLevelEncoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	se, err := NewScalarEncoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x := benchFeatures(cfg.Features)
	h := make([]float64, cfg.Dim)
	pk := make([]int8, cfg.Dim)

	b.Run("level", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			le.EncodeInto(x, h)
		}
	})
	b.Run("level-ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			le.encodeRefInto(x, h)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			se.EncodeInto(x, h)
		}
	})
	b.Run("scalar-ref", func(b *testing.B) {
		for k := 0; k < cfg.Features; k++ {
			se.item.Floats(k) // materialize float bases outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			se.encodeRefInto(x, h)
		}
	})
	b.Run("level-packed", func(b *testing.B) {
		// The fused Predict form: packed biased-ternary query straight from
		// integer counts.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			le.EncodePackedInto(x, encslice.SchemeBiasedTernary, pk)
		}
	})
	b.Run("scalar-packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			se.EncodePackedInto(x, encslice.SchemeBiasedTernary, pk)
		}
	})
	b.Run("level-batch8", func(b *testing.B) {
		// One op encodes 8 rows through the multi-row kernel (each item-
		// memory column loaded once per chunk).
		X := make([][]float64, 8)
		for i := range X {
			X[i] = benchFeatures(cfg.Features)
		}
		hb := make([]float64, len(X)*cfg.Dim)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			le.encodeRows(X, hb)
		}
	})
}

func BenchmarkPredict26x10k(b *testing.B) {
	// Eq. 4 inference against an ISOLET-shaped model (26 classes).
	src := hrand.New(101)
	m := NewModel(26, 10000)
	for l := 0; l < 26; l++ {
		m.Add(l, src.NormalVec(10000, 0, 25))
	}
	q := src.NormalVec(10000, 0, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(q)
	}
}

func BenchmarkRetrainEpoch(b *testing.B) {
	src := hrand.New(102)
	const classes, dim, samples = 8, 2000, 200
	encoded := make([][]float64, samples)
	labels := make([]int, samples)
	for i := range encoded {
		encoded[i] = src.NormalVec(dim, 0, 10)
		labels[i] = i % classes
	}
	m, err := Train(encoded, labels, classes, dim)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RetrainEpoch(m, encoded, labels)
	}
}

func BenchmarkSequenceEncode(b *testing.B) {
	enc, err := NewSequenceEncoder(hrand.New(103), 26, 10000, 3)
	if err != nil {
		b.Fatal(err)
	}
	seq := make([]int, 64)
	for i := range seq {
		seq[i] = i % 26
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(seq); err != nil {
			b.Fatal(err)
		}
	}
}
