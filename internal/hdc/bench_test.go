package hdc

import (
	"testing"

	"privehd/internal/hrand"
)

// Kernel benchmarks at the paper's geometry: ISOLET-shaped inputs
// (617 features) into D_hv = 10,000 hypervectors.

func benchFeatures(n int) []float64 {
	src := hrand.New(100)
	x := make([]float64, n)
	for i := range x {
		x[i] = src.Float64()
	}
	return x
}

func BenchmarkLevelEncode617x10k(b *testing.B) {
	enc, err := NewLevelEncoder(Config{Dim: 10000, Features: 617, Levels: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := benchFeatures(617)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Encode(x)
	}
}

func BenchmarkScalarEncode617x10k(b *testing.B) {
	enc, err := NewScalarEncoder(Config{Dim: 10000, Features: 617, Levels: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := benchFeatures(617)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Encode(x)
	}
}

func BenchmarkPredict26x10k(b *testing.B) {
	// Eq. 4 inference against an ISOLET-shaped model (26 classes).
	src := hrand.New(101)
	m := NewModel(26, 10000)
	for l := 0; l < 26; l++ {
		m.Add(l, src.NormalVec(10000, 0, 25))
	}
	q := src.NormalVec(10000, 0, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(q)
	}
}

func BenchmarkRetrainEpoch(b *testing.B) {
	src := hrand.New(102)
	const classes, dim, samples = 8, 2000, 200
	encoded := make([][]float64, samples)
	labels := make([]int, samples)
	for i := range encoded {
		encoded[i] = src.NormalVec(dim, 0, 10)
		labels[i] = i % classes
	}
	m, err := Train(encoded, labels, classes, dim)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RetrainEpoch(m, encoded, labels)
	}
}

func BenchmarkSequenceEncode(b *testing.B) {
	enc, err := NewSequenceEncoder(hrand.New(103), 26, 10000, 3)
	if err != nil {
		b.Fatal(err)
	}
	seq := make([]int, 64)
	for i := range seq {
		seq[i] = i % 26
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(seq); err != nil {
			b.Fatal(err)
		}
	}
}
