package hdc

import (
	"testing"

	"privehd/internal/encslice"
	"privehd/internal/hrand"
)

// engineGeometries stresses the word tiling: dimensions around the 64-bit
// word size, feature counts around the 8-wide CSA group, small and large
// level counts.
var engineGeometries = []Config{
	{Dim: 1, Features: 1, Levels: 2, Seed: 11},
	{Dim: 63, Features: 7, Levels: 2, Seed: 12},
	{Dim: 64, Features: 8, Levels: 3, Seed: 13},
	{Dim: 65, Features: 9, Levels: 16, Seed: 14},
	{Dim: 130, Features: 23, Levels: 100, Seed: 15},
	{Dim: 257, Features: 40, Levels: 101, Seed: 16},
}

func engineInputs(cfg Config, trial int) []float64 {
	src := hrand.New(cfg.Seed + uint64(trial)*97)
	x := make([]float64, cfg.Features)
	for k := range x {
		switch trial % 3 {
		case 0:
			x[k] = src.Float64()
		case 1:
			// Saturating inputs exercise the clamp ends of LevelIndex.
			x[k] = 2*src.Float64() - 0.5
		default:
			x[k] = 0 // all-zero features: every level index is 0
		}
	}
	return x
}

// TestEncodersMatchReferenceLoops pins the tentpole contract: the
// bit-sliced engine path of both paper encoders is bit-identical to the
// reference float loops (the pre-engine implementations).
func TestEncodersMatchReferenceLoops(t *testing.T) {
	for _, cfg := range engineGeometries {
		le := mustLevel(t, cfg)
		se := mustScalar(t, cfg)
		if le.engine == nil || se.engine == nil {
			t.Fatalf("%+v: engine not built for supported geometry", cfg)
		}
		for trial := 0; trial < 6; trial++ {
			x := engineInputs(cfg, trial)
			for name, enc := range map[string]IntoEncoder{"level": le, "scalar": se} {
				got := enc.EncodeInto(x, make([]float64, cfg.Dim))
				var want []float64
				switch e := enc.(type) {
				case *LevelEncoder:
					want = e.encodeRefInto(x, make([]float64, cfg.Dim))
				case *ScalarEncoder:
					want = e.encodeRefInto(x, make([]float64, cfg.Dim))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%s %+v trial %d dim %d: engine %v, reference %v",
							name, cfg, trial, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestEncodePackedIntoMatchesEncodeQuantize checks the fused path against
// encoding and sign-quantizing by hand (the full cross-scheme equivalence
// against the quant package lives in the encslice and core tests, which may
// import it).
func TestEncodePackedIntoMatchesEncodeQuantize(t *testing.T) {
	for _, cfg := range engineGeometries {
		for _, enc := range []PackedEncoder{mustLevel(t, cfg), mustScalar(t, cfg)} {
			x := engineInputs(cfg, 0)
			dst := make([]int8, cfg.Dim)
			if !enc.EncodePackedInto(x, encslice.SchemeBipolar, dst) {
				t.Fatalf("%+v: fused path unavailable", cfg)
			}
			h := enc.Encode(x)
			for j, v := range h {
				want := int8(1)
				if v < 0 {
					want = -1
				}
				if dst[j] != want {
					t.Fatalf("%+v dim %d: fused %d, sign(%v) = %d", cfg, j, dst[j], v, want)
				}
			}
		}
	}
}

func TestEncodePackedIntoRejectsSchemeNone(t *testing.T) {
	cfg := engineGeometries[3]
	enc := mustLevel(t, cfg)
	dst := make([]int8, cfg.Dim)
	if enc.EncodePackedInto(engineInputs(cfg, 0), encslice.SchemeNone, dst) {
		t.Fatal("EncodePackedInto accepted SchemeNone")
	}
}

// TestEncodeBatchChunkBoundaries drives the atomic-cursor dispatch over row
// counts around the chunk size, including a batch smaller than one chunk.
func TestEncodeBatchChunkBoundaries(t *testing.T) {
	cfg := Config{Dim: 96, Features: 11, Levels: 6, Seed: 20}
	enc := mustLevel(t, cfg)
	for _, rows := range []int{1, encodeBatchChunk - 1, encodeBatchChunk, encodeBatchChunk + 1, 3*encodeBatchChunk + 5} {
		src := hrand.New(uint64(rows))
		X := make([][]float64, rows)
		for i := range X {
			X[i] = make([]float64, cfg.Features)
			for k := range X[i] {
				X[i][k] = src.Float64()
			}
		}
		got := EncodeBatch(enc, X, 3)
		for i := range X {
			want := enc.Encode(X[i])
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("rows=%d sample %d dim %d: batch %v, sequential %v",
						rows, i, j, got[i][j], want[j])
				}
			}
		}
	}
}

// TestEncodeBatchRowsAreWriteSafe verifies the contiguous-backing rows are
// full-capacity slices: appending to one must not bleed into its neighbour.
func TestEncodeBatchRowsAreWriteSafe(t *testing.T) {
	cfg := Config{Dim: 32, Features: 4, Levels: 4, Seed: 21}
	enc := mustLevel(t, cfg)
	X := [][]float64{{0.1, 0.5, 0.9, 0.3}, {0.8, 0.2, 0.6, 0.4}}
	out := EncodeBatch(enc, X, 1)
	want1 := append([]float64(nil), out[1]...)
	_ = append(out[0], 999) // must reallocate, not overwrite out[1][0]
	for j := range want1 {
		if out[1][j] != want1[j] {
			t.Fatalf("append to row 0 corrupted row 1 at dim %d", j)
		}
	}
}
