package privehd

import (
	"errors"
	"io"

	"privehd/internal/fpga"
	"privehd/internal/hdc"
	"privehd/internal/hdl"
	"privehd/internal/hrand"
	"privehd/internal/netlist"
)

// This file exposes the §III-D hardware path of the reproduction: LUT-6
// circuit models for the encoding quantizer, structural netlists, cost
// models, the paper's Table I platform models, and Verilog emission.

// Netlist is a structural LUT-6 netlist (inputs, LUT nodes, outputs) that
// can be evaluated bit-exactly or emitted as Verilog.
type Netlist = netlist.Netlist

// Platform models a hardware platform's throughput and energy on an HD
// workload (paper Table I).
type Platform = fpga.Platform

// Workload describes an HD inference workload for the platform models.
type Workload = fpga.Workload

// Platforms returns the paper's Table I platforms: Raspberry Pi, GPU and
// the Prive-HD FPGA design.
func Platforms() []Platform { return fpga.Platforms() }

// BipolarApproxLUTs is the Eq. 15 LUT-budget model for the approximate
// (Fig. 7a) partial-majority circuit at the given input count.
func BipolarApproxLUTs(inputs int) float64 { return fpga.BipolarApproxLUTs(inputs) }

// BipolarExactLUTs models the LUT budget of the exact popcount majority at
// the given input count.
func BipolarExactLUTs(inputs int) float64 { return fpga.BipolarExactLUTs(inputs) }

// BuildBipolarApprox synthesizes the Fig. 7a approximate partial-majority
// circuit for one output dimension with the given input count; the random
// input grouping is deterministic in the seed.
func BuildBipolarApprox(inputs int, seed uint64) (*Netlist, error) {
	if inputs <= 0 {
		return nil, errors.New("privehd: BuildBipolarApprox needs a positive input count")
	}
	nl, _ := netlist.BuildBipolarApprox(inputs, hrand.New(seed))
	return nl, nil
}

// BuildBipolarExact synthesizes the exact popcount-majority circuit for
// one output dimension with the given input count.
func BuildBipolarExact(inputs int) (*Netlist, error) {
	if inputs <= 0 {
		return nil, errors.New("privehd: BuildBipolarExact needs a positive input count")
	}
	return netlist.BuildBipolarExact(inputs, true), nil
}

// WriteVerilog emits a synthesizable Xilinx-style Verilog module for the
// netlist.
func WriteVerilog(w io.Writer, n *Netlist) error { return hdl.WriteVerilog(w, n) }

// Hardware simulates the §III-D FPGA quantization path for a pipeline's
// encoder: the exact popcount majority and the Fig. 7a approximate LUT-6
// circuit, both operating bit-exactly on the encoder's partial-product
// planes. Feed the outputs to Pipeline.PredictVector to measure the
// approximation's accuracy impact.
type Hardware struct {
	enc     *hdc.LevelEncoder
	circuit *fpga.BipolarCircuit
}

// Hardware builds the hardware quantization simulator for this pipeline.
// It requires the (default) Level encoding — the hardware path is defined
// over Eq. 2b's XNOR planes — and a known feature width.
func (p *Pipeline) Hardware(seed uint64) (*Hardware, error) {
	p.mu.RLock()
	cfg := p.cfg
	var enc *hdc.LevelEncoder
	if p.core != nil {
		enc, _ = p.core.Encoder().(*hdc.LevelEncoder)
	}
	p.mu.RUnlock()
	if cfg.encoding != Level {
		return nil, errors.New("privehd: Hardware requires the Level encoding (Eq. 2b)")
	}
	if enc == nil {
		if cfg.features <= 0 {
			return nil, errors.New("privehd: Hardware needs the feature width (train first or pass WithFeatures)")
		}
		var err error
		enc, err = hdc.NewLevelEncoder(hdc.Config{
			Dim: cfg.dim, Features: cfg.features, Levels: cfg.levels, Seed: cfg.seed,
		})
		if err != nil {
			return nil, err
		}
	}
	return &Hardware{
		enc:     enc,
		circuit: fpga.NewBipolarCircuit(enc.NumFeatures(), hrand.New(seed)),
	}, nil
}

// ExactQuantize encodes x and 1-bit quantizes it with the exact popcount
// majority — the reference the approximate circuit is measured against.
func (h *Hardware) ExactQuantize(x []float64) []float64 {
	return fpga.ExactQuantizeEncoding(h.enc.BitPlanes(x), true)
}

// ApproxQuantize encodes x and 1-bit quantizes it with the Fig. 7a
// approximate LUT-6 partial-majority circuit.
func (h *Hardware) ApproxQuantize(x []float64) []float64 {
	return h.circuit.QuantizeEncoding(h.enc.BitPlanes(x))
}
