package privehd_test

import (
	"bytes"
	"errors"
	"testing"

	"privehd"
)

// savedPipeline trains a toy pipeline and returns its Save bytes — the
// seed corpus for the loader fuzz and the starting point for the
// deterministic corruption tests.
func savedPipeline(tb testing.TB, opts ...privehd.Option) []byte {
	tb.Helper()
	X, y := toyData(60, 10)
	base := []privehd.Option{
		privehd.WithDim(256),
		privehd.WithLevels(4),
		privehd.WithSeed(7),
		privehd.WithRetrain(0),
	}
	p, err := privehd.New(append(base, opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	if err := p.Train(X, y); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSaveLoad is the store's boot-safety contract: Load must never panic
// on arbitrary bytes, and anything it does accept must be a usable
// pipeline that round-trips through Save again.
func FuzzSaveLoad(f *testing.F) {
	f.Add(savedPipeline(f))
	f.Add(savedPipeline(f, privehd.WithPruning(128), privehd.WithQuantizer("bipolar")))
	f.Add([]byte{})
	f.Add([]byte("not a gob"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := privehd.Load(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// Accepted input must be a live pipeline: geometry readable,
		// Save round-trip loadable.
		if p.Dim() <= 0 {
			t.Fatalf("Load accepted a pipeline with dim %d", p.Dim())
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("accepted pipeline does not re-Save: %v", err)
		}
		if _, err := privehd.Load(&buf); err != nil {
			t.Fatalf("re-saved pipeline does not re-Load: %v", err)
		}
	})
}

// TestLoadHostileBytes runs the deterministic corruption sweep — every
// truncation boundary and a bit flip in every byte position of a real
// saved pipeline. Load must reject each with ErrCorruptModel (or accept a
// lucky flip that kept the blob well-formed), never panic.
func TestLoadHostileBytes(t *testing.T) {
	blob := savedPipeline(t)

	t.Run("truncations", func(t *testing.T) {
		step := len(blob)/97 + 1
		for n := 0; n < len(blob); n += step {
			if _, err := privehd.Load(bytes.NewReader(blob[:n])); err == nil {
				t.Fatalf("Load accepted a %d/%d-byte truncation", n, len(blob))
			} else if !errors.Is(err, privehd.ErrCorruptModel) {
				t.Fatalf("truncation at %d: error %v does not wrap ErrCorruptModel", n, err)
			}
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		step := len(blob)/211 + 1
		for i := 0; i < len(blob); i += step {
			for _, bit := range []byte{0x01, 0x80} {
				mut := append([]byte(nil), blob...)
				mut[i] ^= bit
				p, err := privehd.Load(bytes.NewReader(mut))
				if err != nil {
					continue // rejected without panicking: the contract
				}
				// A flip that survived decode (e.g. in a float payload)
				// must still have produced a usable pipeline.
				if p.Dim() <= 0 {
					t.Fatalf("flip at byte %d produced dim %d", i, p.Dim())
				}
			}
		}
	})

	t.Run("garbage", func(t *testing.T) {
		for _, data := range [][]byte{nil, {0}, {0xff, 0xff, 0xff, 0xff}, bytes.Repeat([]byte{0x7f}, 4096)} {
			if _, err := privehd.Load(bytes.NewReader(data)); err == nil {
				t.Fatal("Load accepted garbage")
			}
		}
	})
}

// TestLoadRoundTrip pins the happy path the fuzz only exercises by luck: a
// freshly saved pipeline loads back with identical geometry.
func TestLoadRoundTrip(t *testing.T) {
	blob := savedPipeline(t)
	p, err := privehd.Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 256 {
		t.Fatalf("round-trip dim = %d, want 256", p.Dim())
	}
}
