package privehd_test

// Acceptance coverage for sharded serving through the public facade: a
// model split across dimension and/or class shards answers bit-identically
// to whole-model serving, Connect picks (or sniffs) the topology, the
// tiling is validated, and a replica dying mid-run costs a shard retry —
// never a dropped request.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"privehd"
)

// shardServer is one serving process of a sharded fleet, killable
// mid-test.
type shardServer struct {
	addr string
	srv  *privehd.Server
	done chan error
}

// Kill force-closes the server, dropping its in-flight requests.
func (s *shardServer) Kill() { s.srv.Close() }

// serveRegistry serves reg on a loopback listener until the test ends.
func serveRegistry(t *testing.T, reg *privehd.Registry) *shardServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := privehd.NewRegistryServer(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	t.Cleanup(func() {
		srv.Close()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Error("server did not stop")
		}
	})
	return &shardServer{addr: lis.Addr().String(), srv: srv, done: done}
}

// serveShardFleet registers one slice of p per entry in slices (with
// replicas servers per slice) and returns every server in slice-major
// order.
func serveShardFleet(t *testing.T, model string, p *privehd.Pipeline, slices []privehd.ShardSlice, replicas int) []*shardServer {
	t.Helper()
	var fleet []*shardServer
	for _, s := range slices {
		for r := 0; r < replicas; r++ {
			reg := privehd.NewRegistry()
			if err := reg.RegisterShard(model, p, s); err != nil {
				t.Fatal(err)
			}
			fleet = append(fleet, serveRegistry(t, reg))
		}
	}
	return fleet
}

func fleetAddrs(fleet []*shardServer) []string {
	addrs := make([]string, len(fleet))
	for i, s := range fleet {
		addrs[i] = s.addr
	}
	return addrs
}

// halves splits dim into two contiguous dimension shards.
func halves(dim int) []privehd.ShardSlice {
	return []privehd.ShardSlice{
		{DimOffset: 0, DimLen: dim / 2},
		{DimOffset: dim / 2, DimLen: dim - dim/2},
	}
}

// TestShardedEquivalentToWholeAcrossQuantizers is the acceptance bar: a
// D=8000 model split across two dimension shards must return bit-identical
// labels AND scores to serving the whole model, for every quantized
// encoding scheme.
func TestShardedEquivalentToWholeAcrossQuantizers(t *testing.T) {
	const dim = 8000
	X, y := toyData(24, 12)
	for _, scheme := range []string{"bipolar", "ternary", "ternary-biased", "2bit"} {
		t.Run(scheme, func(t *testing.T) {
			p := trainPipeline(t, X, y, privehd.WithDim(dim), privehd.WithQuantizer(scheme))

			wholeReg := privehd.NewRegistry()
			if err := wholeReg.Register("m", p); err != nil {
				t.Fatal(err)
			}
			whole := serveRegistry(t, wholeReg)
			fleet := serveShardFleet(t, "m", p, halves(dim), 1)

			ctx := context.Background()
			wc, err := privehd.Connect(ctx, privehd.Target{Addrs: []string{whole.addr}, Model: "m"})
			if err != nil {
				t.Fatal(err)
			}
			defer wc.Close()
			sc, err := privehd.Connect(ctx, privehd.Target{
				Addrs:    fleetAddrs(fleet),
				Model:    "m",
				Topology: privehd.TopologySharded,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Close()

			sharded, ok := sc.(*privehd.Sharded)
			if !ok {
				t.Fatalf("TopologySharded connected a %T", sc)
			}
			if got := len(sharded.Shards()); got != 2 {
				t.Fatalf("coordinator sees %d shard groups, want 2", got)
			}
			if sharded.Dim() != dim {
				t.Fatalf("logical dim %d, want %d", sharded.Dim(), dim)
			}

			for i, x := range X {
				wl, ws, err := wc.Predict(x)
				if err != nil {
					t.Fatalf("whole predict %d: %v", i, err)
				}
				sl, ss, err := sc.Predict(x)
				if err != nil {
					t.Fatalf("sharded predict %d: %v", i, err)
				}
				if wl != sl {
					t.Fatalf("query %d: whole label %d, sharded label %d", i, wl, sl)
				}
				if len(ws) != len(ss) {
					t.Fatalf("query %d: score lengths %d vs %d", i, len(ws), len(ss))
				}
				for c := range ws {
					if ws[c] != ss[c] {
						t.Fatalf("query %d class %d: whole score %v, sharded score %v — not bit-identical",
							i, c, ws[c], ss[c])
					}
				}
				_ = y // labels compared against each other, not ground truth
			}
		})
	}
}

// TestShardedGridEquivalence crosses dimension shards with class shards: a
// 2×2 grid (each replica serves half the dimensions of one class) must
// still answer bit-identically to the whole model.
func TestShardedGridEquivalence(t *testing.T) {
	const dim = 512
	X, y := toyData(30, 12)
	p := trainPipeline(t, X, y)

	wholeReg := privehd.NewRegistry()
	if err := wholeReg.Register("m", p); err != nil {
		t.Fatal(err)
	}
	whole := serveRegistry(t, wholeReg)

	grid := []privehd.ShardSlice{
		{DimOffset: 0, DimLen: dim / 2, ClassOffset: 0, ClassCount: 1},
		{DimOffset: 0, DimLen: dim / 2, ClassOffset: 1, ClassCount: 1},
		{DimOffset: dim / 2, DimLen: dim / 2, ClassOffset: 0, ClassCount: 1},
		{DimOffset: dim / 2, DimLen: dim / 2, ClassOffset: 1, ClassCount: 1},
	}
	fleet := serveShardFleet(t, "m", p, grid, 1)

	ctx := context.Background()
	wc, err := privehd.Connect(ctx, privehd.Target{Addrs: []string{whole.addr}, Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	// TopologyAuto over a multi-address target must sniff the shard
	// descriptor from the handshake and build the sharded client itself.
	sc, err := privehd.Connect(ctx, privehd.Target{Addrs: fleetAddrs(fleet), Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sharded, ok := sc.(*privehd.Sharded)
	if !ok {
		t.Fatalf("auto topology over shard replicas connected a %T, want *privehd.Sharded", sc)
	}
	if got := len(sharded.Shards()); got != 4 {
		t.Fatalf("coordinator sees %d shard groups, want 4", got)
	}

	wholeLabels, err := wc.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	shardLabels, err := sc.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if wholeLabels[i] != shardLabels[i] {
			t.Fatalf("query %d: whole label %d, grid-sharded label %d", i, wholeLabels[i], shardLabels[i])
		}
	}
	// Per-query scores too: the grid reassembles each class's score from
	// one (dim, class) cell pair.
	for i, x := range X {
		wl, ws, err := wc.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		sl, ss, err := sc.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if wl != sl {
			t.Fatalf("query %d: labels diverge %d vs %d", i, wl, sl)
		}
		for c := range ws {
			if ws[c] != ss[c] {
				t.Fatalf("query %d class %d: %v vs %v — not bit-identical", i, c, ws[c], ss[c])
			}
		}
	}
	_ = y
}

// TestShardedReplicaKillZeroDrops is the -race acceptance test: two
// dimension shards with two replicas each, one replica killed mid-run;
// every concurrent request must succeed via the shard-level retry (the
// coordinator re-asks only the missing shard's surviving replica).
func TestShardedReplicaKillZeroDrops(t *testing.T) {
	const dim = 1024
	X, y := toyData(40, 12)
	_ = y
	p := trainPipeline(t, X, y, privehd.WithDim(dim))
	fleet := serveShardFleet(t, "m", p, halves(dim), 2)

	client, err := privehd.Connect(context.Background(), privehd.Target{
		Addrs:    fleetAddrs(fleet),
		Model:    "m",
		Topology: privehd.TopologySharded,
	}, privehd.WithConnectProbeInterval(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	var killOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i == perWorker/3 {
					// Kill the first replica of shard group 0 while every
					// worker is mid-stream.
					killOnce.Do(fleet[0].Kill)
				}
				if _, _, err := client.Predict(X[(w*perWorker+i)%len(X)]); err != nil {
					errCh <- fmt.Errorf("worker %d request %d dropped: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestConnectTopologiesReturnConcreteClients pins the Connect dispatch:
// each explicit topology yields its concrete client type, and the
// single-address auto default is a pool.
func TestConnectTopologiesReturnConcreteClients(t *testing.T) {
	pipe, _, _ := toyPipeline(t)
	reg := privehd.NewRegistry()
	if err := reg.Register("m", pipe); err != nil {
		t.Fatal(err)
	}
	a := serveRegistry(t, reg)
	b := serveRegistry(t, reg)
	ctx := context.Background()

	cases := []struct {
		name   string
		target privehd.Target
		want   string
	}{
		{"single", privehd.Target{Addrs: []string{a.addr}, Topology: privehd.TopologySingle}, "*privehd.Remote"},
		{"pool", privehd.Target{Addrs: []string{a.addr}, Topology: privehd.TopologyPool}, "*privehd.Pool"},
		{"auto single addr", privehd.Target{Addrs: []string{a.addr}}, "*privehd.Pool"},
		{"cluster", privehd.Target{Addrs: []string{a.addr, b.addr}, Topology: privehd.TopologyCluster}, "*privehd.Cluster"},
		{"auto whole replicas", privehd.Target{Addrs: []string{a.addr, b.addr}}, "*privehd.Cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := privehd.Connect(ctx, tc.target)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := fmt.Sprintf("%T", c); got != tc.want {
				t.Fatalf("Connect returned %s, want %s", got, tc.want)
			}
			if label, _, err := c.(interface {
				Predict([]float64) (int, []float64, error)
			}).Predict(make([]float64, 12)); err != nil {
				t.Fatalf("predict through %s: %v (label %d)", tc.want, err, label)
			}
		})
	}
}

// TestConnectShardTilingMismatch: replicas whose slices leave a gap must
// be refused with the typed deployment error, not served approximately.
func TestConnectShardTilingMismatch(t *testing.T) {
	const dim = 512
	pipe, _, _ := toyPipeline(t)
	gappy := []privehd.ShardSlice{
		{DimOffset: 0, DimLen: 200},
		{DimOffset: 300, DimLen: dim - 300}, // dims 200–299 unserved
	}
	fleet := serveShardFleet(t, "m", pipe, gappy, 1)

	_, err := privehd.Connect(context.Background(), privehd.Target{
		Addrs:    fleetAddrs(fleet),
		Model:    "m",
		Topology: privehd.TopologySharded,
	})
	if err == nil {
		t.Fatal("Connect accepted a fleet with a dimension gap")
	}
	if !errors.Is(err, privehd.ErrShardTiling) {
		t.Errorf("err = %v, want ErrShardTiling", err)
	}
}

// TestConnectShardedRejectsRawQueries: a raw-query edge cannot be
// partial-scored, so sharded Connect refuses it up front with the typed
// error rather than failing per-request.
func TestConnectShardedRejectsRawQueries(t *testing.T) {
	const dim = 512
	pipe, _, _ := toyPipeline(t)
	fleet := serveShardFleet(t, "m", pipe, halves(dim), 1)

	_, err := privehd.Connect(context.Background(), privehd.Target{
		Addrs:    fleetAddrs(fleet),
		Model:    "m",
		Topology: privehd.TopologySharded,
	}, privehd.WithEdgeOptions(privehd.WithRawQueries()))
	if err == nil {
		t.Fatal("Connect built a sharded client over a raw-query edge")
	}
	if !errors.Is(err, privehd.ErrPartialUnsupported) {
		t.Errorf("err = %v, want ErrPartialUnsupported", err)
	}
}

// TestConnectShardedRefusedByV4OnlyReplica: a coordinator meeting a
// frozen v4-only replica must surface the version refusal as the typed
// handshake error — graceful, not a transport retry loop.
func TestConnectShardedRefusedByV4OnlyReplica(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	// A hand-rolled v4 responder: gob matches fields by name, so this
	// frozen subset decodes into the client's ServerHello.
	type v4Hello struct {
		Code, Detail string
		Version      byte
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				hdr := make([]byte, 4)
				if _, err := io.ReadFull(conn, hdr); err != nil {
					return
				}
				var hello struct{ Model string }
				if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
					return
				}
				gob.NewEncoder(conn).Encode(v4Hello{
					Code:    "version-mismatch",
					Detail:  "server speaks v4, client sent v5",
					Version: 4,
				})
			}(conn)
		}
	}()

	_, err = privehd.Connect(context.Background(), privehd.Target{
		Addrs:    []string{lis.Addr().String()},
		Topology: privehd.TopologySharded,
	})
	if err == nil {
		t.Fatal("Connect succeeded against a v4-only replica")
	}
	if !errors.Is(err, privehd.ErrVersionMismatch) {
		t.Errorf("err = %v, want ErrVersionMismatch", err)
	}
	if errors.Is(err, privehd.ErrTransport) {
		t.Errorf("version refusal wraps ErrTransport (would be retried): %v", err)
	}
}
