package privehd

import (
	"fmt"

	"privehd/internal/dp"
	"privehd/internal/quant"
)

// Encoding selects which paper encoding (Eq. 2) a pipeline or edge uses.
type Encoding int

const (
	// Level is Eq. 2b (level ⊙ base XNOR), the hardware-friendly default.
	Level Encoding = iota
	// Scalar is Eq. 2a (scalar × base), the form the reconstruction-attack
	// analysis is written against.
	Scalar
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case Level:
		return "level"
	case Scalar:
		return "scalar"
	}
	return fmt.Sprintf("Encoding(%d)", int(e))
}

// config collects every knob an Option can set. One struct backs both
// pipelines and edges; options that only make sense for one side record
// their name so the other side's constructor can reject them.
type config struct {
	dim      int
	levels   int
	features int
	classes  int
	encoding Encoding

	quantizer     quant.Quantizer
	keepDims      int
	retrainEpochs int
	epsilon       float64
	delta         float64

	seed      uint64
	noiseSeed uint64 // 0 = derive as seed+1
	workers   int

	// Edge-side query obfuscation (§III-C).
	maskDims   int
	rawQueries bool

	// Option-misuse bookkeeping.
	edgeOnly []string // edge options seen (rejected by New)
	pipeOnly []string // pipeline options seen (rejected by NewEdge)
	errs     []error  // option-level failures (bad quantizer name, ...)
}

// defaultConfig is the paper's default geometry: D=10,000 hypervectors over
// 100 feature levels, level encoding, biased-ternary encoding quantization
// (the paper's best accuracy/noise trade-off) and two retraining epochs.
func defaultConfig() config {
	return config{
		dim:           10000,
		levels:        100,
		encoding:      Level,
		quantizer:     quant.BiasedTernary{},
		retrainEpochs: 2,
		delta:         1e-5,
		seed:          1,
	}
}

// validate checks everything that does not depend on training data. caller
// names the constructor for error messages; reject lists misused options.
func (c *config) validate(caller string, reject []string) error {
	if len(c.errs) > 0 {
		return fmt.Errorf("privehd: %s: %w", caller, c.errs[0])
	}
	if len(reject) > 0 {
		return fmt.Errorf("privehd: %s does not accept %s (it configures the other side of the pipeline)", caller, reject[0])
	}
	switch {
	case c.dim <= 0:
		return fmt.Errorf("privehd: %s: WithDim must be positive, got %d", caller, c.dim)
	case c.levels < 2:
		return fmt.Errorf("privehd: %s: WithLevels must be at least 2, got %d", caller, c.levels)
	case c.features < 0:
		return fmt.Errorf("privehd: %s: WithFeatures must be non-negative, got %d", caller, c.features)
	case c.classes < 0:
		return fmt.Errorf("privehd: %s: WithClasses must be non-negative, got %d", caller, c.classes)
	case c.encoding != Level && c.encoding != Scalar:
		return fmt.Errorf("privehd: %s: unknown encoding %d", caller, int(c.encoding))
	case c.keepDims < 0 || c.keepDims > c.dim:
		return fmt.Errorf("privehd: %s: WithPruning keep=%d out of range [0,%d]", caller, c.keepDims, c.dim)
	case c.retrainEpochs < 0:
		return fmt.Errorf("privehd: %s: WithRetrain epochs must be non-negative", caller)
	case c.maskDims < 0 || (c.maskDims > 0 && c.maskDims >= c.dim):
		return fmt.Errorf("privehd: %s: WithQueryMask dims=%d out of range [0,%d)", caller, c.maskDims, c.dim)
	case c.epsilon < 0:
		return fmt.Errorf("privehd: %s: WithNoise epsilon must be non-negative", caller)
	}
	if c.epsilon > 0 {
		if err := (dp.Params{Epsilon: c.epsilon, Delta: c.delta}).Validate(); err != nil {
			return fmt.Errorf("privehd: %s: %w", caller, err)
		}
	}
	return nil
}

// Option configures a Pipeline (New) or an Edge (NewEdge, Pipeline.Edge)
// through the functional-options pattern.
type Option func(*config)

// WithDim sets the hypervector dimensionality D_hv (default 10,000).
func WithDim(d int) Option {
	return func(c *config) { c.dim = d }
}

// WithLevels sets the number of feature quantization levels ℓ_iv of Eq. 1
// (default 100).
func WithLevels(n int) Option {
	return func(c *config) { c.levels = n }
}

// WithFeatures fixes the input dimensionality D_iv. Pipelines may omit it
// and infer the width from the first training batch; edges and untrained
// servers need it up front.
func WithFeatures(n int) Option {
	return func(c *config) { c.features = n }
}

// WithClasses fixes the label space size. When omitted, Train infers it as
// max(label)+1.
func WithClasses(n int) Option {
	return func(c *config) {
		c.classes = n
		c.pipeOnly = append(c.pipeOnly, "WithClasses")
	}
}

// WithEncoding selects the paper encoding: Level (Eq. 2b, default) or
// Scalar (Eq. 2a).
func WithEncoding(e Encoding) Option {
	return func(c *config) { c.encoding = e }
}

// WithQuantizer selects the encoding quantization scheme of Eq. 13 by name:
// "full" (no quantization), "bipolar", "ternary", "ternary-biased"
// (default) or "2bit".
func WithQuantizer(name string) Option {
	return func(c *config) {
		q, err := quant.Parse(name)
		if err != nil {
			c.errs = append(c.errs, err)
			return
		}
		c.quantizer = q
		c.pipeOnly = append(c.pipeOnly, "WithQuantizer")
	}
}

// WithPruning prunes the trained model down to keep effective dimensions
// (§III-B1) before retraining; 0 (the default) keeps every dimension.
func WithPruning(keep int) Option {
	return func(c *config) {
		c.keepDims = keep
		c.pipeOnly = append(c.pipeOnly, "WithPruning")
	}
}

// WithRetrain sets the number of Eq. 5 retraining passes after one-shot
// training (default 2; the paper finds 1–2 sufficient, Fig. 4).
func WithRetrain(epochs int) Option {
	return func(c *config) {
		c.retrainEpochs = epochs
		c.pipeOnly = append(c.pipeOnly, "WithRetrain")
	}
}

// WithNoise makes the released model (ε,δ)-differentially private by
// Gaussian noise scaled to the quantizer's Eq. 14 sensitivity (Eq. 12 when
// unquantized). Epsilon 0 disables noise.
func WithNoise(epsilon, delta float64) Option {
	return func(c *config) {
		c.epsilon = epsilon
		c.delta = delta
		c.pipeOnly = append(c.pipeOnly, "WithNoise")
	}
}

// WithSeed seeds every random substrate deterministically: base/level
// memories use seed, the DP noise stream seed+1 (unless WithNoiseSeed
// overrides it), the query mask seed+2. Equal options with equal seeds
// produce identical pipelines.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithNoiseSeed seeds the DP noise stream independently of the encoder
// seed — two releases of the same pipeline draw fresh noise by varying
// only this. Zero (the default) derives it as seed+1.
func WithNoiseSeed(seed uint64) Option {
	return func(c *config) {
		c.noiseSeed = seed
		c.pipeOnly = append(c.pipeOnly, "WithNoiseSeed")
	}
}

// WithWorkers bounds encoding parallelism (0, the default, uses
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithQueryMask nullifies this many randomly chosen dimensions of every
// outgoing edge query (the same dimensions for all queries, chosen at
// setup from the seed) — the §III-C masking defence. Edge-side only.
func WithQueryMask(dims int) Option {
	return func(c *config) {
		c.maskDims = dims
		c.edgeOnly = append(c.edgeOnly, "WithQueryMask")
	}
}

// WithRawQueries disables the 1-bit quantization of outgoing edge queries,
// sending full-precision encodings over the wire (the undefended baseline
// the paper's eavesdropper attacks). Edge-side only.
func WithRawQueries() Option {
	return func(c *config) {
		c.rawQueries = true
		c.edgeOnly = append(c.edgeOnly, "WithRawQueries")
	}
}
