module privehd

go 1.22
