package privehd

import (
	"privehd/internal/trace"
)

// Request tracing attributes a request's latency to its stages — client
// queue, network, server queue, scoring, reply write — end to end: a
// sampled Predict draws a 64-bit trace ID, carries it to the server in the
// request frame (protocol v4; older servers silently ignore it), and the
// server's reply carries its stage timing back. Both sides feed flight
// recorders that retain the slowest and the errored requests, the server
// tags its latency histogram with the trace ID as an OpenMetrics exemplar,
// and the admin API serves the server-side recorder at
// GET /v1/debug/requests — so one slow request can be chased from a
// Prometheus histogram bucket to the exact stage that ate its budget.
//
// Tracing is off by default and adds nothing to the untraced hot path
// (zero allocations; a single atomic load per request).

// SetTraceSampling sets the process-wide fraction of requests that are
// traced: 0 disables tracing (the default), 1 traces everything, values
// between sample uniformly. It applies to client-side submissions
// (Remote, Pool, Cluster) and to server frames that arrive untraced.
func SetTraceSampling(rate float64) { trace.SetSampling(rate) }

// TraceSampling returns the current trace sampling rate.
func TraceSampling() float64 { return trace.Sampling() }

// TraceEntry is one completed traced (or flight-recorded) request: trace
// ID, model, operation, peer, outcome, and where the latency went.
type TraceEntry = trace.Entry

// TraceBreakdown is a per-stage latency breakdown in nanoseconds.
type TraceBreakdown = trace.Breakdown

// TraceSnapshot is a point-in-time view of a flight recorder: the slowest
// retained requests and the most recent errors.
type TraceSnapshot = trace.Snapshot

// OnTrace installs fn as the process-wide observer of completed client-side
// traced requests — bench harnesses and tests use it to collect spans
// without polling the recorder. Pass nil to remove the observer. The
// callback runs on the connection's receive goroutine; keep it fast.
func OnTrace(fn func(TraceEntry)) { trace.SetObserver(fn) }

// ClientTraces snapshots the process-wide client-side flight recorder
// (traced Remote/Pool/Cluster requests).
func ClientTraces() TraceSnapshot { return trace.Client.Snapshot() }

// ServerTraces snapshots the process-wide server-side flight recorder —
// the same data the admin API serves at GET /v1/debug/requests.
func ServerTraces() TraceSnapshot { return trace.Default.Snapshot() }
