package privehd

import (
	"context"
	"net"
	"net/http"

	"privehd/internal/admin"
)

// AdminOption configures NewAdminHandler and ServeAdmin.
type AdminOption func(*adminConfig)

type adminConfig struct {
	maxUpload int64
	pprof     bool
}

// WithAdminUploadLimit bounds admin upload bodies in bytes (default 256
// MiB). Oversized uploads are rejected with 413 before the blob is read.
func WithAdminUploadLimit(bytes int64) AdminOption {
	return func(c *adminConfig) { c.maxUpload = bytes }
}

// WithAdminPprof mounts the net/http/pprof profiling handlers under
// /debug/pprof on the admin API, behind the same bearer token as every
// other admin endpoint. Profiles leak internals — heap contents, model
// names, goroutine stacks — so they are never mounted on the public serve
// listener or the unauthenticated metrics listener; the admin plane is the
// only place they exist.
func WithAdminPprof() AdminOption {
	return func(c *adminConfig) { c.pprof = true }
}

// NewAdminHandler builds the HTTP management plane around a manager: a
// bearer-token-authenticated JSON API to upload model versions, activate
// and roll them back, set the default, deregister, and list models with
// durable version history and live served counters. Every mutation goes
// through the manager, so it is committed to the store before the registry
// serves it. The token must be non-empty — an unauthenticated management
// plane would let anyone replace served models.
//
// Endpoints, all under "Authorization: Bearer <token>":
//
//	GET    /v1/models                  list models
//	GET    /v1/models/{name}           one model's status
//	POST   /v1/models/{name}/versions  upload a Save blob (?activate=false stages)
//	POST   /v1/models/{name}/activate  activate ?version=N
//	POST   /v1/models/{name}/rollback  back to the previous version
//	POST   /v1/models/{name}/default   make {name} the default
//	DELETE /v1/models/{name}           deregister and delete
//	GET    /v1/debug/requests          flight recorder: slowest + errored requests
//	GET    /metrics                    Prometheus/OpenMetrics exposition (no token)
//	GET    /debug/pprof/...            profiling, only with WithAdminPprof
func NewAdminHandler(m *Manager, token string, opts ...AdminOption) (http.Handler, error) {
	var cfg adminConfig
	for _, o := range opts {
		o(&cfg)
	}
	var hopts []admin.HandlerOption
	if cfg.pprof {
		hopts = append(hopts, admin.WithPprof())
	}
	return admin.NewHandler(m, token, cfg.maxUpload, hopts...)
}

// ServeAdmin hosts the management plane on lis until ctx is cancelled,
// shutting down gracefully (in-flight requests finish). It returns nil
// after a clean stop. Run it beside ServeRegistry: the registry listener
// is the data plane, this is the control plane.
func ServeAdmin(ctx context.Context, lis net.Listener, m *Manager, token string, opts ...AdminOption) error {
	h, err := NewAdminHandler(m, token, opts...)
	if err != nil {
		return err
	}
	return admin.Serve(ctx, lis, h)
}
