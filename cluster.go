package privehd

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"privehd/internal/cluster"
	"privehd/internal/offload"
)

// ErrNoHealthyReplicas reports that a Cluster operation failed on every
// distinct replica it could try — the whole fleet is unreachable. It wraps
// ErrTransport (the condition is retryable once replicas return). Typed
// protocol errors (ErrUnknownModel, ErrBatchTooLarge, …) are never
// converted to this: they come from a live server and surface unchanged.
var ErrNoHealthyReplicas = cluster.ErrNoHealthyReplicas

// BalancePolicy selects how a Cluster spreads requests over healthy
// replicas.
type BalancePolicy = cluster.Policy

const (
	// LeastInFlight sends each request to the healthy replica with the
	// fewest outstanding requests (the default) — adaptive to replicas of
	// unequal speed.
	LeastInFlight = cluster.LeastInFlight
	// RoundRobin cycles through healthy replicas in order.
	RoundRobin = cluster.RoundRobin
)

// ReplicaStatus is one replica's health snapshot: its address, whether it
// is currently admitted for traffic, and its pool's connection/in-flight
// counts.
type ReplicaStatus = cluster.ReplicaStatus

// Cluster serves one model from many replicas: each replica address gets
// its own connection pool, requests are balanced across healthy replicas
// (least-in-flight by default), a replica whose transport fails is ejected
// and its in-flight requests transparently retried on another replica
// (classification is idempotent), and periodic lightweight health probes
// re-admit replicas that come back. Callers only see an error when every
// distinct replica failed (ErrNoHealthyReplicas) or a live server answered
// with a typed protocol error. All methods are safe for concurrent use.
//
// This is the client half of the ROADMAP's replica-serving step: the
// registry put many models behind one listener; the cluster puts one model
// behind many listeners.
type Cluster struct {
	edge *Edge
	cl   *cluster.Cluster
}

// ClusterOption configures DialCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	pool          poolConfig
	policy        BalancePolicy
	probeInterval time.Duration
	logger        *slog.Logger
}

// WithClusterModel selects which served model the cluster binds to
// (default: each server's default model).
func WithClusterModel(name string) ClusterOption {
	return func(c *clusterConfig) { c.pool.model = name }
}

// WithClusterPolicy selects the balancing policy (default LeastInFlight).
func WithClusterPolicy(p BalancePolicy) ClusterOption {
	return func(c *clusterConfig) { c.policy = p }
}

// WithClusterProbeInterval sets how often replicas are health-probed and
// ejected ones re-admitted (default 2s); pass d ≤ 0 to disable probing —
// a dead replica then only recovers when all replicas were ejected and
// traffic falls back to retrying them.
func WithClusterProbeInterval(d time.Duration) ClusterOption {
	return func(c *clusterConfig) {
		if d <= 0 {
			c.probeInterval = -1
			return
		}
		c.probeInterval = d
	}
}

// WithClusterPool applies per-replica pool options (WithPoolSize,
// WithPoolIOTimeout, WithPoolEdge, …) to every replica's connection pool.
func WithClusterPool(opts ...PoolOption) ClusterOption {
	return func(c *clusterConfig) {
		for _, o := range opts {
			o(&c.pool)
		}
	}
}

// WithClusterLogger routes the cluster's structured health-transition
// events (replica ejected / re-admitted, with address and reason) to the
// given logger. By default they are discarded.
func WithClusterLogger(log *slog.Logger) ClusterOption {
	return func(c *clusterConfig) { c.logger = log }
}

// DialCluster connects to a replicated serving fleet — one model behind
// many addresses — and validates the first reachable replica's handshake
// eagerly (the context bounds it). Pass the Edge whose obfuscated queries
// the cluster should carry, or nil to auto-configure one from the
// advertised encoder setup exactly like DialModel (layer defences on with
// WithClusterPool(WithPoolEdge(...))).
//
// Deprecated: use Connect with TopologyCluster — the Target plus
// WithConnectPool/WithConnectPolicy options cover this constructor
// exactly.
func DialCluster(ctx context.Context, network string, addrs []string, edge *Edge, opts ...ClusterOption) (*Cluster, error) {
	var cfg clusterConfig
	for _, o := range opts {
		o(&cfg)
	}
	hello := offload.Hello{Model: cfg.pool.model}
	if edge != nil {
		hello.Dim = edge.Dim()
	}
	cl, err := cluster.NewCluster(cluster.ClusterConfig{
		Network:       network,
		Addrs:         addrs,
		Hello:         hello,
		Pool:          cfg.pool.toInternal(),
		Policy:        cfg.policy,
		ProbeInterval: cfg.probeInterval,
		Logger:        cfg.logger,
	})
	if err != nil {
		return nil, fmt.Errorf("privehd: %w", err)
	}
	sh, err := cl.Hello(ctx)
	if err != nil {
		cl.Close()
		return nil, err
	}
	if edge == nil {
		edge, err = edgeFromServerHello(sh, cfg.pool.edgeOpts...)
		if err != nil {
			cl.Close()
			return nil, err
		}
	}
	return &Cluster{edge: edge, cl: cl}, nil
}

// Edge returns the edge obfuscating the cluster's queries.
func (c *Cluster) Edge() *Edge { return c.edge }

// Predict obfuscates one input on the edge and classifies it on some
// healthy replica, failing over transparently if a replica dies mid-call.
func (c *Cluster) Predict(x []float64) (int, []float64, error) {
	q, err := c.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return c.cl.Classify(context.Background(), q)
}

// PredictContext is Predict bounded by ctx: the remaining context budget
// rides on every request frame (Request.BudgetNs) so replicas shed work
// that can no longer answer in time, retries draw from a shared per-call
// budget, and cancellation aborts the wait. A blown deadline surfaces as
// ErrDeadlineExceeded. With hedging enabled (Target.Hedge, WithHedging)
// a slow attempt races a backup replica, first reply wins.
func (c *Cluster) PredictContext(ctx context.Context, x []float64) (int, []float64, error) {
	q, err := c.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return c.cl.Classify(ctx, q)
}

// PredictBatch obfuscates a batch of inputs and classifies them on some
// healthy replica (the whole batch fails over together — classification
// is idempotent and deterministic per model publication).
func (c *Cluster) PredictBatch(X [][]float64) ([]int, error) {
	qs, err := c.edge.PrepareBatch(X)
	if err != nil {
		return nil, err
	}
	return c.cl.ClassifyBatch(context.Background(), qs)
}

// PredictPrepared classifies an already-prepared query hypervector.
func (c *Cluster) PredictPrepared(q []float64) (int, []float64, error) {
	return c.PredictPreparedContext(context.Background(), q)
}

// PredictPreparedContext is PredictPrepared bounded by ctx (see
// PredictContext for the deadline and hedging semantics).
func (c *Cluster) PredictPreparedContext(ctx context.Context, q []float64) (int, []float64, error) {
	if len(q) != c.edge.Dim() {
		return 0, nil, fmt.Errorf("privehd: prepared query has dim %d, edge dim %d", len(q), c.edge.Dim())
	}
	return c.cl.Classify(ctx, q)
}

// ListModels returns the registry listing of the first healthy replica
// that answers (see Remote.ListModels).
func (c *Cluster) ListModels() ([]ModelInfo, error) {
	listings, err := c.cl.ListModels(context.Background())
	if err != nil {
		return nil, err
	}
	return modelInfosFromListings(listings), nil
}

// Replicas returns a snapshot of every replica's health and load.
func (c *Cluster) Replicas() []ReplicaStatus { return c.cl.Replicas() }

// Traces snapshots the process-wide client-side flight recorder.
func (c *Cluster) Traces() TraceSnapshot { return ClientTraces() }

// Close stops the health prober and closes every replica pool.
func (c *Cluster) Close() error { return c.cl.Close() }
