// Package privehd is a from-scratch Go reproduction of "Prive-HD:
// Privacy-Preserved Hyperdimensional Computing" (Khaleghi, Imani, Rosing —
// DAC 2020, arXiv:2005.06716).
//
// The library lives under internal/ (see README.md for the map):
//
//   - internal/hdc — hyperdimensional computing substrate (encodings,
//     class-vector models, retraining)
//   - internal/quant, internal/prune, internal/dp — the paper's three
//     privacy levers: encoding quantization, model pruning, calibrated
//     Gaussian noise
//   - internal/attack — the Eq. 10 reconstruction and model-difference
//     membership attacks the defences are measured against
//   - internal/core — the assembled Prive-HD training/inference pipelines
//   - internal/offload — edge→cloud inference over TCP with a wiretap
//     harness
//   - internal/fpga, internal/netlist, internal/hdl — the §III-D hardware
//     path: LUT-6 circuit models, structural netlists, Verilog emission
//   - internal/experiments — regenerators for every paper table and figure
//
// The root package holds only this documentation and the benchmark harness
// (bench_test.go), which regenerates each paper artifact under `go test
// -bench`.
package privehd
