// Package privehd is a from-scratch Go reproduction of "Prive-HD:
// Privacy-Preserved Hyperdimensional Computing" (Khaleghi, Imani, Rosing —
// DAC 2020, arXiv:2005.06716), exposed as a single public API.
//
// This root package is the supported surface. Build a pipeline with the
// functional-options constructor, train it, and use it locally or over the
// network:
//
//	pipe, err := privehd.New(
//	    privehd.WithDim(10000),
//	    privehd.WithQuantizer("ternary-biased"), // Eq. 13 encoding quantization
//	    privehd.WithPruning(5000),               // §III-B1 dimension pruning
//	    privehd.WithNoise(8, 1e-5),              // Eq. 8 (ε,δ)-DP Gaussian noise
//	)
//	err = pipe.Train(X, y)
//	label, err := pipe.Predict(x)
//	labels, err := pipe.PredictBatch(X)          // goroutine-parallel
//	err = pipe.Save(w)                           // versioned; privehd.Load restores
//
// Streaming workloads train with Pipeline.TrainOnline, which bundles each
// sample with an error-proportional weight and returns the observed
// worst-case per-sample ℓ2 contribution so a DP release can be calibrated
// honestly (weighted bundling voids the fixed Eq. 12/14 bound).
//
// The §III-C offloaded-inference split is privehd.Serve and
// privehd.Connect: a versioned wire protocol with
// goroutine-per-connection reads, a bounded scoring worker pool shared
// across connections (WithServerWorkers), context cancellation, graceful
// shutdown and batched queries on a packed one-byte-per-dimension form.
// The protocol is at v5; frames are gob messages after a "PHD"+version
// handshake, each version a strict field superset of the last:
//
//	v2: Hello{Dim,Classes}         Request{Queries}             Reply{Code,Detail,Results}
//	v3: Hello{…,Model}             Request{Queries}             Reply{…}               (+ encoder setup in ServerHello)
//	v4: Hello{…,Model}             Request{ID,Op,Queries,Trace} Reply{ID,…,Models,Timing}
//	v5: Hello{…,Model}             Request{…}                   Reply{…,Partials,NormSq,GoAway} (+ Shard in ServerHello)
//
// Trace and Timing are the optional end-to-end tracing fields: a sampled
// request carries a 64-bit trace ID to the server and gets its
// server-side stage timing (queue, scoring, total residency) back on the
// reply. Both are gob-omitted when zero, so untraced frames stay
// byte-identical to pre-trace v4 frames, and peers that predate the
// fields drop them silently (gob's field-superset rule) — no version
// bump was needed. v5 adds the sharded-serving surface on the same
// superset rule: the ServerHello carries the replica's shard descriptor
// when it serves a slice of a larger model, Op("partial-scores") returns
// exact integer partial dot products plus class norm squares for packed
// queries, and a draining v5 server pushes one Reply{ID:0, GoAway:true}
// frame before half-closing, so clients stop submitting to it before the
// FIN arrives. A v5 server still serves v2–v4 clients byte-for-byte
// identically — the new fields are gob-omitted when unused — and a v5
// client meeting an older server surfaces the typed ErrVersionMismatch
// refusal rather than retrying.
//
// v4's per-request IDs make connections pipelined: requests from any
// number of goroutines interleave over one connection through dedicated
// send/recv goroutines and replies may return out of order, matched by ID
// — so Remote is safe for concurrent use, large batches cost one round
// trip, and Op("list-models") discovers the served registry over the wire
// (Remote.ListModels). v2/v3 clients are still served strictly in order.
// WithIOTimeout bounds reply progress so a hung server cannot block a
// Predict forever. The client side pairs connections with a
// Pipeline.Edge — the on-device obfuscator (1-bit quantization plus
// WithQueryMask dimension masking) whose output is all that ever crosses
// the wire:
//
//	go privehd.Serve(ctx, lis, pipe)
//	edge, err := pipe.Edge(privehd.WithQueryMask(1000))
//	c, err := privehd.Connect(ctx, privehd.Target{Addrs: []string{addr}}, privehd.WithEdge(edge))
//	labels, err := c.PredictBatch(X)
//
// Connect is the one constructor for every serving topology, and Client
// is the topology-independent interface it returns: the Target's
// Topology field — not the calling code — chooses between a single
// pipelined connection (TopologySingle → Remote), a bounded connection
// pool (TopologyPool → Pool), a replicated fleet with health-tracked
// failover (TopologyCluster → Cluster) and a model split across shard
// replicas (TopologySharded → Sharded). TopologyAuto (the zero value)
// sniffs: one address pools it, several addresses build a Sharded client
// when the handshake advertises a shard descriptor and a Cluster
// otherwise. The older constructors — Dial, DialModel, NewRemote,
// NewRemoteModel, DialPool, DialCluster — remain as deprecated wrappers
// around the same machinery.
//
// Sharded serving splits one logical model across replicas by dimension
// slice and/or class range: Registry.RegisterShard publishes a slice
// (privehd-serve -shard dim=0:5000 from the command line), the v5
// handshake advertises it, and the Sharded client scatters each packed
// query to every shard group, gathers their exact integer partial
// scores, and reduces — bit-identical to serving the unsplit model,
// because integer dot products compose exactly across a dimension
// partition. Replicas serving the same slice form a failover group, so a
// replica dying mid-gather retries only its own shard. Connect validates
// that the fleet's descriptors tile the full model exactly
// (ErrShardTiling) and that the model can be partial-scored at all
// (ErrPartialUnsupported — DP-noised float models cannot).
//
// Production deployments serve many models behind one listener through a
// Registry of named, versioned pipelines: clients select one in the
// handshake (ForModel) or auto-configure their whole edge from the
// advertised encoder setup (DialModel, knowing nothing but the name), and
// Registry.Swap hot-publishes an updated model without dropping
// connections or failing queries in flight (the registry view is one
// atomic RCU snapshot; lookups never block):
//
//	reg := privehd.NewRegistry()
//	err = reg.Register("isolet", pipe)           // first registered = default
//	go privehd.ServeRegistry(ctx, lis, reg, privehd.WithServerWorkers(8))
//	remote, err := privehd.DialModel(ctx, "tcp", addr, "isolet")
//	err = reg.Swap("isolet", retrained)          // live, version-bumped
//
// Above single connections sit the client-side scaling layers. A Pool
// (DialPool) multiplexes any number of concurrent callers over a small
// reused set of pipelined connections to one address — dial-on-demand,
// idle reaping, redial with backoff, and one transparent retry of
// idempotent queries on transport failure. A Cluster (DialCluster) serves
// one model from many replica addresses: least-in-flight or round-robin
// balancing over per-replica pools, ejection of replicas whose transport
// fails, periodic health probes that re-admit them, and transparent
// failover — callers only see ErrNoHealthyReplicas when the whole fleet
// is down, or a typed protocol error a live server actually answered:
//
//	cl, err := privehd.DialCluster(ctx, "tcp", addrs, nil, // nil = auto-configure the edge
//	    privehd.WithClusterModel("isolet"))
//	models, err := cl.ListModels()               // registry discovery over the wire
//	label, scores, err := cl.Predict(x)          // balanced + failover
//
// A Manager makes the deployment durable: OpenManager binds the registry
// to a crash-safe versioned on-disk model store and replays the last
// committed state — exact active versions and default — on restart, and
// ServeAdmin exposes the authenticated HTTP management plane (upload,
// activate, rollback, set-default, deregister, list with live served
// counters) over it. Every mutation is publish-after-persist: the store
// commits (temp-file + fsync + rename) before the registry swap goes
// live, so a crash never advertises state that won't survive. Load is
// hardened for this boundary — malformed or hostile blobs fail with
// ErrCorruptModel, bounded allocations, never a panic:
//
//	mgr, err := privehd.OpenManager("/var/lib/privehd", reg)
//	ver, err := mgr.Publish("isolet", pipe)      // durable, then live
//	go privehd.ServeAdmin(ctx, adminLis, mgr, token)
//
// The whole local hot path runs in the integer domain. Encoding is
// bit-sliced (internal/encslice): base and level hypervectors stay packed
// one bit per dimension and both paper encodings are evaluated by
// carry-save-adder popcount accumulation over transposed bit-planes
// instead of a per-feature float64 multiply-add — with a fused path that
// derives the quantized −2…+1 query straight from the integer counts, and
// a batch kernel that amortizes each pass over the item memory across
// several rows (training, PredictBatch). Scoring consumes the packed
// query against cache-blocked int8/int16/int32 class planes derived once
// per model publication — no float64 expansion, no float dot, no
// per-query heap allocation, and bit-identical results to the float
// reference path at every stage (see internal/encslice and
// internal/intscore for the exactness arguments). Registry entries carry
// the prepared planes through their RCU snapshots, so hot swaps re-derive
// them atomically; the serving worker pool, Predict/PredictBatch and
// PredictVector all use the same engines. CI gates these hot paths —
// encoder benchmarks included — against a committed benchmark baseline
// (BENCH_baseline.json, cmd/benchgate): >20% normalized ns/op regression
// or any allocation on a zero-alloc path fails the build.
//
// The serving stack is observable in production without external
// dependencies. Every component records into one process-wide Prometheus
// text-format registry — server traffic (privehd_server_requests_total,
// privehd_server_queries_total, the privehd_server_request_seconds
// latency histogram, privehd_server_rejections_total by reason, byte and
// connection counters), per-replica pool and cluster health
// (privehd_pool_*, privehd_cluster_replica_healthy,
// privehd_cluster_health_transitions_total, privehd_cluster_failovers_total)
// and model lifecycle (privehd_model_publications_total,
// privehd_model_active_version, privehd_model_rollbacks_total).
// Recording is lock-free and allocation-free, so instrumentation stays on
// under full load. Scrape via MetricsHandler (mount anywhere), ServeMetrics
// (a dedicated listener), or GET /metrics on the admin API (served without
// the bearer token — counters only, never model data). WithMaxConns bounds
// admitted connections; excess dials receive a typed refusal that clients
// surface as ErrOverloaded, which wraps ErrTransport so pools retry and
// clusters fail over on their own. Cluster health transitions and manager
// model-lifecycle events emit structured log/slog records through
// WithClusterLogger and WithManagerLogger (silent by default). The
// cmd/privehd-bench load generator drives a real fleet closed- or
// open-loop and cross-audits the /metrics counters against its own tally.
//
// The fleet degrades gracefully rather than amplifying failure.
// PredictContext stamps the caller's remaining context budget on every
// request frame (Request.BudgetNs in the wire protocol); since gob omits
// zero fields, undeadlined frames stay byte-identical to the previous
// wire format and no protocol version bump was needed. Servers start the
// budget clock at frame arrival and shed queued work whose budget has
// expired, answering a typed rejection that surfaces as
// ErrDeadlineExceeded — deliberately not wrapped in ErrTransport, because
// retrying out-of-time work on another replica only wastes capacity. All
// retry layers of one logical call (pool redial, cluster failover, hedge
// attempts) draw from a single per-call retry budget with jittered
// backoff, per-replica circuit breakers slow probe re-admission of
// flapping replicas, idle pooled connections are liveness-pinged in-band,
// and Target.Hedge (tuned by WithHedging) arms tail-latency request
// hedging: a straggling attempt gets a backup on a second healthy
// replica, first reply wins, the loser is canceled. internal/chaos plus
// privehd-bench -chaos soak the whole stack under deterministic fault
// injection in CI.
//
// Request tracing closes the loop from a latency number to its cause.
// SetTraceSampling samples requests end to end: the trace ID travels in
// the wire frame, the server's stage breakdown (queue wait, scoring,
// total residency) returns on the reply, and the client attributes the
// rest of the round trip to its own queue and the network. Servers keep
// a lock-free flight recorder of the slowest and the errored requests —
// served by the admin API at GET /v1/debug/requests and mirrored by
// WithSlowRequestLog's structured slow-request events — and OpenMetrics
// scrapes carry the latest trace ID as an exemplar on the latency
// histogram. OnTrace, ClientTraces and ServerTraces expose the client
// and server recorders in-process. The untraced path costs nothing:
// sampling off is one atomic load and zero allocations per request
// (enforced by AllocsPerRun tests and the benchmark gate). Go runtime
// health (goroutines, heap, GC pauses, scheduler latency) is exported
// beside the serving metrics, and WithAdminPprof mounts net/http/pprof
// on the admin plane — behind its bearer token, never on a public
// listener.
//
// LoadDataset serves the paper's synthetic stand-in workloads,
// Edge.Reconstruct and MeasureReconstruction run the Eq. 10 eavesdropper
// analysis, Pipeline.Hardware and the netlist builders expose the §III-D
// FPGA path, and RunExperiments regenerates every paper table and figure.
// See README.md for the package map and a tour.
//
// Everything under internal/ — the hdc substrate, the quant/prune/dp
// privacy levers, the attack implementations, the offload wire protocol,
// the fpga/netlist/hdl hardware path and the experiment regenerators — is
// implementation detail: importable only from inside this module and free
// to change between versions. The wire protocol and the Save format are
// versioned independently of the Go API.
package privehd
