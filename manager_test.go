package privehd_test

//lint:file-ignore SA1019 the deprecated constructors stay fully supported; these tests pin their behavior

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"privehd"
)

// openManager opens a manager over dir with a fresh registry.
func openManager(t *testing.T, dir string, opts ...privehd.ManagerOption) (*privehd.Manager, *privehd.Registry) {
	t.Helper()
	reg := privehd.NewRegistry()
	m, err := privehd.OpenManager(dir, reg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m, reg
}

func saveBytes(t *testing.T, p *privehd.Pipeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestManagerPublishAndRestart(t *testing.T) {
	dir := t.TempDir()
	m, reg := openManager(t, dir)

	pa, _, _ := toyPipeline(t)
	if v, err := m.Publish("a", pa); err != nil || v != 1 {
		t.Fatalf("Publish a = v%d, %v", v, err)
	}
	Xi, yi := invertedToyData(40, 12)
	pa2 := trainPipeline(t, Xi, yi)
	if v, err := m.Publish("a", pa2); err != nil || v != 2 {
		t.Fatalf("Publish a again = v%d, %v", v, err)
	}
	pb, _, _ := toyPipeline(t)
	if v, err := m.Publish("b", pb); err != nil || v != 1 {
		t.Fatalf("Publish b = v%d, %v", v, err)
	}
	// First publication auto-defaulted, durably.
	if reg.DefaultName() != "a" {
		t.Fatalf("default after first publish = %q, want a", reg.DefaultName())
	}
	// Roll a back to v1 and move the default — the reopened registry must
	// reproduce both exactly.
	if v, err := m.Rollback("a"); err != nil || v != 1 {
		t.Fatalf("Rollback a = v%d, %v", v, err)
	}
	if err := m.SetDefault("b"); err != nil {
		t.Fatal(err)
	}

	m2, reg2 := openManager(t, dir)
	if reg2.DefaultName() != "b" {
		t.Fatalf("reopened default = %q, want b", reg2.DefaultName())
	}
	models := reg2.Models()
	if len(models) != 2 {
		t.Fatalf("reopened registry holds %d models", len(models))
	}
	if models[0].Name != "a" || models[0].Version != 1 {
		t.Fatalf("reopened a = %+v, want version 1 (the rollback)", models[0])
	}
	if models[1].Name != "b" || models[1].Version != 1 {
		t.Fatalf("reopened b = %+v", models[1])
	}
	// History survived: a has both versions, active 1.
	var aStatus bool
	for _, s := range m2.Status() {
		if s.Name == "a" {
			aStatus = true
			if s.ActiveVersion != 1 || len(s.Versions) != 2 || !s.Live {
				t.Fatalf("a status = %+v", s)
			}
		}
	}
	if !aStatus {
		t.Fatal("Status lists no model a")
	}
}

func TestManagerUploadRejectsCorruptBlobs(t *testing.T) {
	dir := t.TempDir()
	m, _ := openManager(t, dir)
	for _, blob := range [][]byte{nil, []byte("garbage"), bytes.Repeat([]byte{0x7f}, 512)} {
		if _, err := m.Upload("m", blob, true); !errors.Is(err, privehd.ErrCorruptModel) {
			t.Errorf("Upload(%d garbage bytes) = %v, want ErrCorruptModel", len(blob), err)
		}
	}
	// Nothing reached the store or the registry.
	if got := len(m.Status()); got != 0 {
		t.Fatalf("rejected uploads left %d models", got)
	}
	// A truncated real blob is rejected too.
	p, _, _ := toyPipeline(t)
	blob := saveBytes(t, p)
	if _, err := m.Upload("m", blob[:len(blob)/2], true); !errors.Is(err, privehd.ErrCorruptModel) {
		t.Fatalf("Upload(truncated) = %v, want ErrCorruptModel", err)
	}
}

func TestManagerStagedUploadThenActivate(t *testing.T) {
	dir := t.TempDir()
	m, reg := openManager(t, dir)
	p, _, _ := toyPipeline(t)
	v, err := m.Upload("m", saveBytes(t, p), false)
	if err != nil || v != 1 {
		t.Fatalf("staged Upload = v%d, %v", v, err)
	}
	if reg.Len() != 0 {
		t.Fatal("staged upload went live")
	}
	// Staged models survive a restart without going live.
	m, reg = openManager(t, dir)
	if reg.Len() != 0 {
		t.Fatal("staged upload went live after reopen")
	}
	if err := m.Activate("m", 1); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 || reg.Models()[0].Version != 1 {
		t.Fatalf("Activate did not publish: %+v", reg.Models())
	}
	if reg.DefaultName() != "m" {
		t.Fatalf("first activation default = %q, want m", reg.DefaultName())
	}
}

func TestManagerDeregister(t *testing.T) {
	dir := t.TempDir()
	m, reg := openManager(t, dir)
	p, _, _ := toyPipeline(t)
	if _, err := m.Publish("m", p); err != nil {
		t.Fatal(err)
	}
	if err := m.Deregister("m"); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 || len(m.Status()) != 0 {
		t.Fatal("Deregister left the model somewhere")
	}
	if _, reg2 := openManager(t, dir); reg2.Len() != 0 {
		t.Fatal("Deregister did not survive reopen")
	}
	if err := m.Deregister("m"); !errors.Is(err, privehd.ErrUnknownModel) {
		t.Fatalf("double Deregister = %v, want ErrUnknownModel", err)
	}
}

func TestManagerBadNames(t *testing.T) {
	m, _ := openManager(t, t.TempDir())
	p, _, _ := toyPipeline(t)
	if _, err := m.Publish("../evil", p); !errors.Is(err, privehd.ErrBadModelName) {
		t.Fatalf("Publish(../evil) = %v, want ErrBadModelName", err)
	}
	if _, err := m.Rollback("ghost"); !errors.Is(err, privehd.ErrUnknownModel) {
		t.Fatalf("Rollback(ghost) = %v, want ErrUnknownModel", err)
	}
	if err := m.Activate("ghost", 1); !errors.Is(err, privehd.ErrUnknownModel) {
		t.Fatalf("Activate(ghost) = %v, want ErrUnknownModel", err)
	}
}

// adminClient is a minimal authenticated HTTP client for the admin API.
type adminClient struct {
	base  string
	token string
}

func (c adminClient) do(t *testing.T, method, path string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestManagementPlaneEndToEnd is the acceptance scenario: a serving
// deployment with a durable store takes an admin upload of v2, serves it,
// restarts into the same state, then rolls back to v1 over the admin API
// while live traffic flows — without dropping a single request.
func TestManagementPlaneEndToEnd(t *testing.T) {
	dir := t.TempDir()
	const token = "e2e-token"

	// --- Boot 1: publish v1, start data + admin planes. ---
	m, reg := openManager(t, dir)
	p1, X, y := toyPipeline(t)
	if v, err := m.Publish("toy", p1); err != nil || v != 1 {
		t.Fatalf("Publish = v%d, %v", v, err)
	}

	ctx, stopServers := context.WithCancel(context.Background())
	dataLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := privehd.NewRegistryServer(reg)
	serveDone := make(chan error, 2)
	go func() { serveDone <- srv.Serve(ctx, dataLis) }()
	go func() { serveDone <- privehd.ServeAdmin(ctx, adminLis, m, token) }()
	admin := adminClient{base: "http://" + adminLis.Addr().String(), token: token}

	// Unauthenticated requests bounce.
	req, _ := http.NewRequest("GET", admin.base+"/v1/models", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("unauthenticated list → %d, want 401", resp.StatusCode)
		}
	}

	// Upload v2 (labels inverted, so the active version is observable from
	// predictions) over the admin API and serve queries against it.
	Xi, yi := invertedToyData(40, 12)
	p2 := trainPipeline(t, Xi, yi)
	code, body := admin.do(t, "POST", "/v1/models/toy/versions", saveBytes(t, p2))
	if code != http.StatusCreated {
		t.Fatalf("upload v2 → %d: %s", code, body)
	}
	edge, err := p1.Edge()
	if err != nil {
		t.Fatal(err)
	}
	dial := func() *privehd.Remote {
		r, err := privehd.Dial(context.Background(), "tcp", dataLis.Addr().String(), edge, privehd.ForModel("toy"))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	remote := dial()
	if remote.ModelVersion() != 2 {
		t.Fatalf("handshake after upload advertises v%d, want 2", remote.ModelVersion())
	}
	if label, _, err := remote.Predict(X[0]); err != nil || label != 1-y[0] {
		t.Fatalf("v2 predicts %d, %v; want inverted label %d", label, err, 1-y[0])
	}
	remote.Close()

	// --- Restart: same active version, default and history. ---
	stopServers()
	for i := 0; i < 2; i++ {
		select {
		case err := <-serveDone:
			if err != nil {
				t.Fatalf("server exit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("servers did not stop")
		}
	}

	m2, reg2 := openManager(t, dir)
	if reg2.DefaultName() != "toy" {
		t.Fatalf("restart default = %q", reg2.DefaultName())
	}
	if ms := reg2.Models(); len(ms) != 1 || ms[0].Version != 2 {
		t.Fatalf("restart registry = %+v, want toy v2", ms)
	}
	status := m2.Status()
	if len(status) != 1 || status[0].ActiveVersion != 2 || len(status[0].Versions) != 2 {
		t.Fatalf("restart status = %+v", status)
	}

	ctx2, stop2 := context.WithCancel(context.Background())
	defer stop2()
	dataLis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminLis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := privehd.NewRegistryServer(reg2)
	go func() { srv2.Serve(ctx2, dataLis2) }()
	go func() { privehd.ServeAdmin(ctx2, adminLis2, m2, token) }()
	admin2 := adminClient{base: "http://" + adminLis2.Addr().String(), token: token}

	// --- Authenticated rollback under live traffic. ---
	// Hammer the server from several connections; every Predict must
	// succeed before, during and after the rollback.
	var (
		wg      sync.WaitGroup
		stopTrf = make(chan struct{})
		trfErr  = make(chan error, 4)
	)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := privehd.Dial(context.Background(), "tcp", dataLis2.Addr().String(), edge, privehd.ForModel("toy"))
			if err != nil {
				trfErr <- err
				return
			}
			defer r.Close()
			for j := 0; ; j++ {
				select {
				case <-stopTrf:
					return
				default:
				}
				if _, _, err := r.Predict(X[j%len(X)]); err != nil {
					trfErr <- fmt.Errorf("in-flight Predict failed: %w", err)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let traffic flow
	code, body = admin2.do(t, "POST", "/v1/models/toy/rollback", nil)
	if code != http.StatusOK {
		t.Fatalf("rollback → %d: %s", code, body)
	}
	time.Sleep(50 * time.Millisecond) // traffic across the swap
	close(stopTrf)
	wg.Wait()
	select {
	case err := <-trfErr:
		t.Fatalf("traffic dropped during rollback: %v", err)
	default:
	}

	// New connections see v1 again — original labels.
	r2 := dial2(t, dataLis2.Addr().String(), edge)
	defer r2.Close()
	if r2.ModelVersion() != 1 {
		t.Fatalf("post-rollback handshake advertises v%d, want 1", r2.ModelVersion())
	}
	if label, _, err := r2.Predict(X[0]); err != nil || label != y[0] {
		t.Fatalf("post-rollback predicts %d, %v; want original label %d", label, err, y[0])
	}

	// The rollback is durable: the manifest on disk records active v1.
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"active": 1`)) {
		t.Fatalf("manifest does not record the rollback:\n%s", raw)
	}
}

// dial2 dials a model connection or fails the test.
func dial2(t *testing.T, addr string, edge *privehd.Edge) *privehd.Remote {
	t.Helper()
	r, err := privehd.Dial(context.Background(), "tcp", addr, edge, privehd.ForModel("toy"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}
