package privehd

import "privehd/internal/dataset"

// Dataset is a self-contained train/test classification task with
// normalized features in [0,1]. The standard workloads are synthetic
// stand-ins matching the paper's evaluation geometry (see the dataset
// package documentation): "isolet-s" (617 features, 26 classes), "face-s"
// (608 features, binary) and "mnist-s" (28×28 procedural digit images).
type Dataset = dataset.Dataset

// LoadDataset returns a standard workload by name ("isolet-s", "face-s" or
// "mnist-s"). The small scale is a fast subsample for demos and tests; the
// full scale matches the reproduction's experiment sizing.
func LoadDataset(name string, small bool) (*Dataset, error) {
	scale := dataset.Full
	if small {
		scale = dataset.Small
	}
	return dataset.ByName(name, scale)
}

// DatasetNames lists the standard workloads in the order the paper
// tabulates them.
func DatasetNames() []string { return []string{"isolet-s", "face-s", "mnist-s"} }
