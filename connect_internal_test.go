package privehd

// In-package tests for Connect's resolved wire configuration: they reach
// through the returned Client to the protocol connection to pin values the
// public surface only documents.

import (
	"context"
	"net"
	"testing"
	"time"

	"privehd/internal/cluster"
)

func trainToy(t *testing.T) *Pipeline {
	t.Helper()
	var X [][]float64
	var y []int
	for i := 0; i < 24; i++ {
		c := i % 2
		x := make([]float64, 8)
		for k := range x {
			x[k] = 0.25 + 0.5*float64(c) + 0.02*float64((i+k)%5-2)
		}
		X = append(X, x)
		y = append(y, c)
	}
	p, err := New(WithDim(256), WithLevels(8), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(X, y); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConnectSingleIOTimeoutDefault(t *testing.T) {
	// Every topology Connect builds promises the same 30s reply-progress
	// bound unless the caller tunes it. Pools get it from the pool
	// defaults; the single-connection topology must apply it explicitly —
	// a hung server should never block a TopologySingle Predict forever.
	srv, err := NewServer(trainToy(t))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), lis)
	defer srv.Close()
	addr := lis.Addr().String()

	cases := []struct {
		name string
		opts []ConnectOption
		want time.Duration
	}{
		{"default", nil, cluster.DefaultIOTimeout},
		{"explicit", []ConnectOption{WithConnectPool(WithPoolIOTimeout(5 * time.Second))}, 5 * time.Second},
		{"disabled", []ConnectOption{WithConnectPool(WithPoolIOTimeout(-1))}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Connect(context.Background(),
				Target{Addrs: []string{addr}, Topology: TopologySingle}, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			r, ok := c.(*Remote)
			if !ok {
				t.Fatalf("TopologySingle returned %T, want *Remote", c)
			}
			if got := r.client.IOTimeout(); got != tc.want {
				t.Fatalf("wire IOTimeout = %v, want %v", got, tc.want)
			}
		})
	}
}
