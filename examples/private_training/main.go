// Private training: sweep the privacy budget ε and the training-set size
// to see the paper's two central DP effects — Fig. 8(a-c): tighter budgets
// cost accuracy; Fig. 8(d): more data buries the same noise, because class
// hypervector magnitudes grow with the bundled count while the calibrated
// noise std stays fixed.
//
//	go run ./examples/private_training
package main

import (
	"fmt"
	"log"

	"privehd"
)

const dim = 2000

func main() {
	full, err := privehd.LoadDataset("face-s", false)
	if err != nil {
		log.Fatal(err)
	}
	// Half the corpus keeps this demo quick; the size sweep below shows
	// what the other half would buy.
	data := full.Subset(0.5)

	fmt.Printf("privacy budget sweep (%s, %d train samples, D=%d):\n", data.Name, len(data.TrainX), dim)
	for _, eps := range []float64{0, 0.5, 1, 4, 8} {
		p := train(data, eps)
		label := "non-private"
		if eps > 0 {
			label = fmt.Sprintf("eps=%g", eps)
		}
		acc, err := p.Evaluate(data.TestX, data.TestY)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s accuracy %.1f%%", label, 100*acc)
		if r := p.Report(); r.Private {
			fmt.Printf("   (noise std %.0f per dimension)", r.NoiseStd)
		}
		fmt.Println()
	}

	fmt.Printf("\ntraining-set size sweep at eps=1 (the Fig. 8d effect):\n")
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		sub := full.Subset(frac)
		p := train(sub, 1)
		acc, err := p.Evaluate(full.TestX, full.TestY)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f%% of data (%4d samples): accuracy %.1f%%\n",
			100*frac, len(sub.TrainX), 100*acc)
	}

	// The calibration arithmetic behind those numbers.
	p := train(data, 1)
	r := p.Report()
	cal, err := p.Calibration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat D=%d, ε=1: ∆f=%.1f (Eq. 14 ternary), σ=%.2f, noise std=%.1f\n",
		dim, r.Sensitivity, r.SigmaFactor, r.NoiseStd)
	fmt.Printf("unquantized Eq. 12 would need ∆f=%.0f — %.0f× the noise for the same budget\n",
		cal.RawSensitivity, cal.RawSensitivity/r.Sensitivity)
}

func train(d *privehd.Dataset, eps float64) *privehd.Pipeline {
	p, err := privehd.New(
		privehd.WithDim(dim),
		privehd.WithLevels(50),
		privehd.WithSeed(7),
		privehd.WithQuantizer("ternary"),
		privehd.WithRetrain(1),
		privehd.WithNoise(eps, 1e-5),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Train(d.TrainX, d.TrainY); err != nil {
		log.Fatal(err)
	}
	return p
}
