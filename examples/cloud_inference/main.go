// Cloud inference: the full §III-C story over a real TCP connection with
// the versioned privehd protocol. A server hosts a full-precision model;
// an edge client encodes, 1-bit quantizes and masks its queries before
// offloading; an eavesdropper taps the wire and tries the Eq. 10
// reconstruction on what it sees.
//
//	go run ./examples/cloud_inference
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"privehd"
)

func main() {
	const (
		dim    = 6000
		levels = 16
		seed   = 99
	)
	// A tenth of the full MNIST-S corpus (60 samples per digit) keeps the
	// demo fast while giving the model enough data for solid margins.
	full, err := privehd.LoadDataset("mnist-s", false)
	if err != nil {
		log.Fatal(err)
	}
	data := full.Subset(0.1)

	// --- Cloud: train a full-precision model and serve it. -------------
	pipeline, err := privehd.New(
		privehd.WithDim(dim),
		privehd.WithLevels(levels),
		privehd.WithSeed(seed),
		privehd.WithEncoding(privehd.Scalar),
		privehd.WithQuantizer("full"),
		privehd.WithRetrain(0),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipeline.Train(data.TrainX, data.TrainY); err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := privehd.Serve(ctx, lis, pipeline); err != nil {
			log.Println("serve:", err)
		}
	}()
	fmt.Printf("cloud: serving %d-class model on %s (protocol v%d)\n",
		pipeline.Classes(), lis.Addr(), privehd.ProtocolVersion)

	// --- Edge: obfuscating encoder (quantize + mask 1/6 of the dims).
	// MNIST tolerates only modest masking (paper Fig. 9: "accuracy loss is
	// abrupt"), but even a 1k-dim mask pushes reconstruction below ~15 dB.
	edge, err := pipeline.Edge(privehd.WithQueryMask(dim / 6))
	if err != nil {
		log.Fatal(err)
	}

	// --- Wire: the eavesdropper taps the client's connection. ----------
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	tapped, tap := privehd.Tap(raw)
	remote, err := privehd.NewRemote(tapped, edge)
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()

	n := 20
	if n > len(data.TestX) {
		n = len(data.TestX)
	}
	labels, err := remote.PredictBatch(data.TestX[:n])
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, label := range labels {
		if label == data.TestY[i] {
			correct++
		}
	}
	fmt.Printf("edge: %d/%d queries classified correctly through the obfuscated channel\n", correct, n)

	// Give the asynchronous tap a moment to drain.
	for len(tap.Queries()) < n {
		time.Sleep(10 * time.Millisecond)
	}

	// --- Eavesdropper: reconstruct the first query. ---------------------
	truth := edge.QuantizeTruth(data.TestX[0])
	stolen := tap.Queries()[0]
	obfRecon, err := edge.Reconstruct(stolen)
	if err != nil {
		log.Fatal(err)
	}
	cleanRecon, err := edge.Reconstruct(edge.Encode(data.TestX[0]))
	if err != nil {
		log.Fatal(err)
	}
	obf := privehd.MeasureReconstruction(truth, obfRecon)
	clean := privehd.MeasureReconstruction(truth, cleanRecon)
	fmt.Printf("eavesdropper: clean-encoding PSNR %.1f dB → obfuscated PSNR %.1f dB (MSE ×%.1f)\n",
		clean.PSNR, obf.PSNR, obf.MSE/clean.MSE)

	fmt.Println("\nwhat the eavesdropper sees (original | stolen reconstruction):")
	fmt.Println(privehd.SideBySide(
		privehd.RenderASCII(truth, data.ImageWidth),
		privehd.RenderASCII(obfRecon, data.ImageWidth), " | "))
}
