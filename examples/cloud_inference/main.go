// Cloud inference: the full §III-C story over a real TCP connection. A
// server hosts a full-precision model; an edge client encodes, 1-bit
// quantizes and masks its queries before offloading; an eavesdropper taps
// the wire and tries the Eq. 10 reconstruction on what it sees.
//
//	go run ./examples/cloud_inference
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"privehd/internal/attack"
	"privehd/internal/core"
	"privehd/internal/dataset"
	"privehd/internal/hdc"
	"privehd/internal/offload"
)

func main() {
	const (
		dim    = 6000
		levels = 16
		seed   = 99
	)
	// A custom-size MNIST-S keeps the demo fast while giving the model
	// enough data for solid margins.
	data, err := dataset.MNIST(dataset.MNISTSpec{
		Name: "mnist-s", TrainPer: 60, TestPer: 20, Jitter: 3, Noise: 0.24, Seed: 0x31157,
	})
	if err != nil {
		log.Fatal(err)
	}
	hdCfg := hdc.Config{Dim: dim, Features: data.Features, Levels: levels, Seed: seed}

	// --- Cloud: train a full-precision model and serve it. -------------
	enc, err := hdc.NewScalarEncoder(hdCfg)
	if err != nil {
		log.Fatal(err)
	}
	trainEnc := hdc.EncodeBatch(enc, data.TrainX, 0)
	model, err := hdc.Train(trainEnc, data.TrainY, data.Classes, dim)
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := offload.NewServer(model)
	go server.Serve(lis)
	defer server.Close()
	fmt.Printf("cloud: serving %d-class model on %s\n", data.Classes, lis.Addr())

	// --- Edge: obfuscating encoder (quantize + mask 1/6 of the dims).
	// MNIST tolerates only modest masking (paper Fig. 9: "accuracy loss is
	// abrupt"), but even a 1k-dim mask pushes reconstruction below ~15 dB.
	edge, err := core.NewEdge(core.EdgeConfig{
		HD: hdCfg, Encoding: core.EncodingScalar,
		Quantize: true, MaskDims: dim / 6, MaskSeed: seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Wire: the eavesdropper taps the client's connection. ----------
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	tapped, tap := offload.Tap(raw)
	client := offload.NewClient(tapped)
	defer client.Close()

	n := 20
	if n > len(data.TestX) {
		n = len(data.TestX)
	}
	correct := 0
	for i := 0; i < n; i++ {
		label, _, err := client.Classify(edge.Prepare(data.TestX[i]))
		if err != nil {
			log.Fatal(err)
		}
		if label == data.TestY[i] {
			correct++
		}
	}
	fmt.Printf("edge: %d/%d queries classified correctly through the obfuscated channel\n", correct, n)

	// Give the asynchronous tap a moment to drain.
	for len(tap.Queries()) < n {
		time.Sleep(10 * time.Millisecond)
	}

	// --- Eavesdropper: reconstruct the first query. ---------------------
	truth := make([]float64, data.Features)
	for k, v := range data.TestX[0] {
		truth[k] = hdc.LevelValue(hdc.LevelIndex(v, levels), levels)
	}
	stolen := tap.Queries()[0]
	obfRecon, err := attack.DecodeScaled(enc, stolen)
	if err != nil {
		log.Fatal(err)
	}
	cleanRecon, err := attack.DecodeScaled(enc, enc.Encode(data.TestX[0]))
	if err != nil {
		log.Fatal(err)
	}
	obf := attack.Measure(truth, obfRecon)
	clean := attack.Measure(truth, cleanRecon)
	fmt.Printf("eavesdropper: clean-encoding PSNR %.1f dB → obfuscated PSNR %.1f dB (MSE ×%.1f)\n",
		clean.PSNR, obf.PSNR, obf.MSE/clean.MSE)

	fmt.Println("\nwhat the eavesdropper sees (original | stolen reconstruction):")
	fmt.Println(attack.SideBySide(
		attack.RenderASCII(truth, data.ImageWidth),
		attack.RenderASCII(obfRecon, data.ImageWidth), " | "))
}
