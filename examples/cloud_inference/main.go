// Cloud inference: the full §III-C story over a real TCP connection with
// the versioned privehd protocol, at production MLaaS shape. One listener
// serves a registry of named models; an edge client picks its model by
// name and auto-configures its encoder from the v3 handshake (no
// hand-matched flags); queries are 1-bit quantized and masked before they
// leave the device; an eavesdropper taps the wire and tries the Eq. 10
// reconstruction on what it sees; and finally the served model is
// hot-swapped for a better one while the client's connection stays up.
//
//	go run ./examples/cloud_inference
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"privehd"
)

func main() {
	const (
		dim    = 6000
		levels = 16
		seed   = 99
	)
	// A tenth of the full MNIST-S corpus (60 samples per digit) keeps the
	// demo fast while giving the model enough data for solid margins; the
	// "better" publication sees three times as much.
	full, err := privehd.LoadDataset("mnist-s", false)
	if err != nil {
		log.Fatal(err)
	}
	data := full.Subset(0.1)
	more := full.Subset(0.3)

	// --- Cloud: train two full-precision models and serve both from one
	// listener; "mnist" (the first registered) is the default.
	pipeline := train(data.TrainX, data.TrainY, dim, levels, seed)
	better := train(more.TrainX, more.TrainY, dim, levels, seed)

	registry := privehd.NewRegistry()
	if err := registry.Register("mnist", pipeline); err != nil {
		log.Fatal(err)
	}
	if err := registry.Register("mnist-large", better); err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := privehd.ServeRegistry(ctx, lis, registry, privehd.WithServerWorkers(4)); err != nil {
			log.Println("serve:", err)
		}
	}()
	fmt.Printf("cloud: serving %d models on %s (protocol v%d)\n",
		registry.Len(), lis.Addr(), privehd.ProtocolVersion)
	for _, m := range registry.Models() {
		fmt.Printf("  %-12s v%d  D=%d, %d classes, %s encoding\n",
			m.Name, m.Version, m.Dim, m.Classes, m.Encoding)
	}

	// --- Edge: dial the "mnist" model by name. The edge encoder
	// (dimension, levels, seed, encoding) is auto-configured from the v3
	// ServerHello — shared public setup, so nothing is leaked — and the
	// §III-C defences layer on top: 1-bit quantization (default) plus
	// masking 1/6 of the dimensions. MNIST tolerates only modest masking
	// (paper Fig. 9: "accuracy loss is abrupt"), but even a 1k-dim mask
	// pushes reconstruction below ~15 dB. The eavesdropper taps the
	// client's connection.
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	tapped, tap := privehd.Tap(raw)
	remote, err := privehd.NewRemoteModel(tapped, "mnist", privehd.WithQueryMask(dim/6))
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	edge := remote.Edge()
	fmt.Printf("edge: auto-configured from the handshake (model %q v%d, D=%d, %d features)\n",
		remote.Model(), remote.ModelVersion(), edge.Dim(), edge.Features())

	n := 20
	if n > len(data.TestX) {
		n = len(data.TestX)
	}
	labels, err := remote.PredictBatch(data.TestX[:n])
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, label := range labels {
		if label == data.TestY[i] {
			correct++
		}
	}
	fmt.Printf("edge: %d/%d queries classified correctly through the obfuscated channel\n", correct, n)

	// Give the asynchronous tap a moment to drain.
	for len(tap.Queries()) < n {
		time.Sleep(10 * time.Millisecond)
	}

	// --- Eavesdropper: reconstruct the first query. ---------------------
	truth := edge.QuantizeTruth(data.TestX[0])
	stolen := tap.Queries()[0]
	obfRecon, err := edge.Reconstruct(stolen)
	if err != nil {
		log.Fatal(err)
	}
	cleanRecon, err := edge.Reconstruct(edge.Encode(data.TestX[0]))
	if err != nil {
		log.Fatal(err)
	}
	obf := privehd.MeasureReconstruction(truth, obfRecon)
	clean := privehd.MeasureReconstruction(truth, cleanRecon)
	fmt.Printf("eavesdropper: clean-encoding PSNR %.1f dB → obfuscated PSNR %.1f dB (MSE ×%.1f)\n",
		clean.PSNR, obf.PSNR, obf.MSE/clean.MSE)

	fmt.Println("\nwhat the eavesdropper sees (original | stolen reconstruction):")
	fmt.Println(privehd.SideBySide(
		privehd.RenderASCII(truth, data.ImageWidth),
		privehd.RenderASCII(obfRecon, data.ImageWidth), " | "))

	// --- Hot swap: publish the better model under "mnist" while the
	// client's connection stays up. The next request frame is answered by
	// the new publication; nothing reconnects, no query fails.
	if err := registry.Swap("mnist", better); err != nil {
		log.Fatal(err)
	}
	labels, err = remote.PredictBatch(data.TestX[:n])
	if err != nil {
		log.Fatal(err)
	}
	swapped := 0
	for i, label := range labels {
		if label == data.TestY[i] {
			swapped++
		}
	}
	fmt.Printf("cloud: hot-swapped \"mnist\" to v2 under live traffic; same connection now answers %d/%d\n",
		swapped, n)
}

// train fits one full-precision model; clients obfuscate on their side
// ("our technique does not need to modify or access the trained model").
func train(X [][]float64, y []int, dim, levels int, seed uint64) *privehd.Pipeline {
	pipeline, err := privehd.New(
		privehd.WithDim(dim),
		privehd.WithLevels(levels),
		privehd.WithSeed(seed),
		privehd.WithEncoding(privehd.Scalar),
		privehd.WithQuantizer("full"),
		privehd.WithRetrain(0),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipeline.Train(X, y); err != nil {
		log.Fatal(err)
	}
	return pipeline
}
