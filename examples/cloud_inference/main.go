// Cloud inference: the full §III-C story over real TCP connections with
// the versioned privehd protocol, at production MLaaS shape. One listener
// serves a registry of named models; an edge client picks its model by
// name and auto-configures its encoder from the handshake (no
// hand-matched flags); queries are 1-bit quantized and masked before they
// leave the device; an eavesdropper taps the wire and tries the Eq. 10
// reconstruction on what it sees; the served model is hot-swapped for a
// better one while the client's connection stays up; and finally the
// registry is scaled out to a 3-replica fleet that a pooled, pipelined
// Cluster client balances over — discovering the models over the wire,
// surviving a replica kill mid-traffic, and watching the prober eject the
// corpse. Every client is built by privehd.Connect, so the topology —
// single connection, replica cluster, or the protocol-v5 sharded fleet
// that splits one model across dimension slices and scatter–gathers
// bit-identical predictions — is a Target field, not a code path. The
// finale is the management plane: every publication went
// through a durable on-disk store, so the whole deployment is killed and
// restarted into exactly the state it had — then an authenticated HTTP
// rollback takes the served model back a version under live traffic
// without dropping a request.
//
//	go run ./examples/cloud_inference
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"privehd"
)

func main() {
	const (
		dim    = 6000
		levels = 16
		seed   = 99
	)
	// A tenth of the full MNIST-S corpus (60 samples per digit) keeps the
	// demo fast while giving the model enough data for solid margins; the
	// "better" publication sees three times as much.
	full, err := privehd.LoadDataset("mnist-s", false)
	if err != nil {
		log.Fatal(err)
	}
	data := full.Subset(0.1)
	more := full.Subset(0.3)

	// --- Cloud: train two full-precision models and serve both from one
	// listener; "mnist" (the first published) is the default. Publications
	// go through a Manager bound to an on-disk store, so each one is
	// durable — the restart act at the end replays this exact state.
	pipeline := train(data.TrainX, data.TrainY, dim, levels, seed, "full")
	better := train(more.TrainX, more.TrainY, dim, levels, seed, "full")

	storeDir, err := os.MkdirTemp("", "privehd-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	registry := privehd.NewRegistry()
	manager, err := privehd.OpenManager(storeDir, registry)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := manager.Publish("mnist", pipeline); err != nil {
		log.Fatal(err)
	}
	if _, err := manager.Publish("mnist-large", better); err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := privehd.ServeRegistry(ctx, lis, registry, privehd.WithServerWorkers(4)); err != nil {
			log.Println("serve:", err)
		}
	}()
	fmt.Printf("cloud: serving %d models on %s (protocol v%d)\n",
		registry.Len(), lis.Addr(), privehd.ProtocolVersion)
	for _, m := range registry.Models() {
		fmt.Printf("  %-12s v%d  D=%d, %d classes, %s encoding\n",
			m.Name, m.Version, m.Dim, m.Classes, m.Encoding)
	}

	// --- Edge: dial the "mnist" model by name. The edge encoder
	// (dimension, levels, seed, encoding) is auto-configured from the v3
	// ServerHello — shared public setup, so nothing is leaked — and the
	// §III-C defences layer on top: 1-bit quantization (default) plus
	// masking 1/6 of the dimensions. MNIST tolerates only modest masking
	// (paper Fig. 9: "accuracy loss is abrupt"), but even a 1k-dim mask
	// pushes reconstruction below ~15 dB. The eavesdropper taps the
	// client's connection.
	raw, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	tapped, tap := privehd.Tap(raw)
	//lint:ignore SA1019 the tap wraps a pre-established conn, which Connect (a dialer) cannot; NewRemoteModel stays the escape hatch for exactly this
	remote, err := privehd.NewRemoteModel(tapped, "mnist", privehd.WithQueryMask(dim/6))
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	edge := remote.Edge()
	fmt.Printf("edge: auto-configured from the handshake (model %q v%d, D=%d, %d features)\n",
		remote.Model(), remote.ModelVersion(), edge.Dim(), edge.Features())

	n := 20
	if n > len(data.TestX) {
		n = len(data.TestX)
	}
	labels, err := remote.PredictBatch(data.TestX[:n])
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, label := range labels {
		if label == data.TestY[i] {
			correct++
		}
	}
	fmt.Printf("edge: %d/%d queries classified correctly through the obfuscated channel\n", correct, n)

	// Give the asynchronous tap a moment to drain.
	for len(tap.Queries()) < n {
		time.Sleep(10 * time.Millisecond)
	}

	// --- Eavesdropper: reconstruct the first query. ---------------------
	truth := edge.QuantizeTruth(data.TestX[0])
	stolen := tap.Queries()[0]
	obfRecon, err := edge.Reconstruct(stolen)
	if err != nil {
		log.Fatal(err)
	}
	cleanRecon, err := edge.Reconstruct(edge.Encode(data.TestX[0]))
	if err != nil {
		log.Fatal(err)
	}
	obf := privehd.MeasureReconstruction(truth, obfRecon)
	clean := privehd.MeasureReconstruction(truth, cleanRecon)
	fmt.Printf("eavesdropper: clean-encoding PSNR %.1f dB → obfuscated PSNR %.1f dB (MSE ×%.1f)\n",
		clean.PSNR, obf.PSNR, obf.MSE/clean.MSE)

	fmt.Println("\nwhat the eavesdropper sees (original | stolen reconstruction):")
	fmt.Println(privehd.SideBySide(
		privehd.RenderASCII(truth, data.ImageWidth),
		privehd.RenderASCII(obfRecon, data.ImageWidth), " | "))

	// --- Hot swap: publish the better model under "mnist" while the
	// client's connection stays up. The next request frame is answered by
	// the new publication; nothing reconnects, no query fails. Publishing
	// through the manager commits v2 to the store before the registry
	// serves it, so a crash at any instant keeps a consistent state.
	if _, err := manager.Publish("mnist", better); err != nil {
		log.Fatal(err)
	}
	labels, err = remote.PredictBatch(data.TestX[:n])
	if err != nil {
		log.Fatal(err)
	}
	swapped := 0
	for i, label := range labels {
		if label == data.TestY[i] {
			swapped++
		}
	}
	fmt.Printf("cloud: hot-swapped \"mnist\" to v2 under live traffic; same connection now answers %d/%d\n",
		swapped, n)

	// --- Scale out: two more replicas serve the same registry, and a
	// Cluster client multiplexes concurrent callers over pooled, pipelined
	// connections with least-in-flight balancing across all three. When a
	// replica dies mid-traffic, its requests fail over transparently and
	// the health prober ejects it.
	addrs := []string{lis.Addr().String()}
	extras := make([]*privehd.Server, 2)
	for i := range extras {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := privehd.NewRegistryServer(registry, privehd.WithServerWorkers(4))
		extras[i] = srv
		go func() {
			if err := srv.Serve(ctx, l); err != nil {
				log.Println("replica serve:", err)
			}
		}()
		addrs = append(addrs, l.Addr().String())
	}
	cc, err := privehd.Connect(ctx, privehd.Target{
		Addrs:    addrs,
		Model:    "mnist",
		Topology: privehd.TopologyCluster,
	},
		privehd.WithConnectProbeInterval(200*time.Millisecond),
		privehd.WithEdgeOptions(privehd.WithQueryMask(dim/6)))
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()
	clusterClient := cc.(*privehd.Cluster)
	fmt.Printf("\ncloud: scaled out to %d replicas; cluster client auto-configured its edge\n", len(addrs))

	// Model discovery over the wire (protocol v4): no out-of-band config.
	listed, err := clusterClient.ListModels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("edge: discovered served models over the wire:")
	for _, m := range listed {
		def := ""
		if m.Default {
			def = "  (default)"
		}
		fmt.Printf("  %-12s v%d  D=%d%s\n", m.Name, m.Version, m.Dim, def)
	}

	// Concurrent callers hammer the fleet; one replica is killed mid-run.
	const callers = 8
	perCaller := n
	var ok32, failed32 atomic.Int64
	var wg sync.WaitGroup
	half := make(chan struct{})
	var halfOnce sync.Once
	var progress atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				label, _, err := clusterClient.Predict(data.TestX[i])
				if err != nil {
					failed32.Add(1)
				} else if label == data.TestY[i] {
					ok32.Add(1)
				}
				if progress.Add(1) == int64(callers*perCaller/2) {
					halfOnce.Do(func() { close(half) })
				}
			}
		}()
	}
	go func() {
		<-half
		extras[1].Close() // kill the third replica under load
	}()
	wg.Wait()
	fmt.Printf("cluster: %d callers × %d queries with a replica killed mid-run: %d correct, %d failed\n",
		callers, perCaller, ok32.Load(), failed32.Load())
	for _, st := range clusterClient.Replicas() {
		state := "healthy"
		if !st.Healthy {
			state = "ejected"
		}
		fmt.Printf("  replica %-22s %-8s %d conns\n", st.Addr, state, st.Conns)
	}

	// --- Shard: protocol v5 splits one logical model across slice
	// replicas. A quantized publication is what makes this exact — integer
	// class vectors give integer partial dot products, and integers sum
	// associatively — so the dimension halves below, each served from its
	// own listener whose handshake advertises its slice, answer
	// bit-identically to a whole-model server. Connect with the default
	// auto topology sniffs the shard descriptors and builds the
	// scatter–gather client; nothing but the Target changes.
	quantized := train(data.TrainX, data.TrainY, dim, levels, seed, "2bit")
	wholeReg := privehd.NewRegistry()
	if err := wholeReg.Register("mnist-q", quantized); err != nil {
		log.Fatal(err)
	}
	wholeLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go privehd.ServeRegistry(ctx, wholeLis, wholeReg)

	var shardAddrs []string
	for i := 0; i < 2; i++ {
		shardReg := privehd.NewRegistry()
		err := shardReg.RegisterShard("mnist-q", quantized, privehd.ShardSlice{
			DimOffset: i * dim / 2, DimLen: dim / 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		sl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go privehd.ServeRegistry(ctx, sl, shardReg)
		shardAddrs = append(shardAddrs, sl.Addr().String())
	}

	wholeClient, err := privehd.Connect(ctx, privehd.Target{
		Addrs: []string{wholeLis.Addr().String()}, Model: "mnist-q",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer wholeClient.Close()
	shardClient, err := privehd.Connect(ctx, privehd.Target{
		Addrs: shardAddrs, Model: "mnist-q",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer shardClient.Close()
	sharded := shardClient.(*privehd.Sharded)
	fmt.Printf("\ncloud: \"mnist-q\" split across %d shard replicas:\n", len(shardAddrs))
	for _, s := range sharded.Shards() {
		fmt.Printf("  %s\n", s.String())
	}

	identical := 0
	for i := 0; i < n; i++ {
		wLabel, wScores, err := wholeClient.Predict(data.TestX[i])
		if err != nil {
			log.Fatal(err)
		}
		sLabel, sScores, err := sharded.Predict(data.TestX[i])
		if err != nil {
			log.Fatal(err)
		}
		same := wLabel == sLabel
		for c := range wScores {
			same = same && wScores[c] == sScores[c]
		}
		if same {
			identical++
		}
	}
	fmt.Printf("edge: %d/%d sharded predictions bit-identical to whole-model serving (labels and every score)\n",
		identical, n)

	// --- Restart recovery: kill the whole deployment and boot a fresh one
	// from the store. Every publication above was durable, so the new
	// registry comes back with the same models, active versions ("mnist"
	// at v2 — the hot swap survived) and default, without retraining.
	clusterClient.Close()
	remote.Close()
	cancel()
	time.Sleep(50 * time.Millisecond) // let the old listeners die

	registry2 := privehd.NewRegistry()
	manager2, err := privehd.OpenManager(storeDir, registry2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncloud: restarted from %s — recovered state:\n", storeDir)
	for _, st := range manager2.Status() {
		def := ""
		if st.Default {
			def = "  (default)"
		}
		fmt.Printf("  %-12s active v%d of %d stored version(s)%s\n",
			st.Name, st.ActiveVersion, len(st.Versions), def)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	dataLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	adminLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := privehd.ServeRegistry(ctx2, dataLis, registry2, privehd.WithServerWorkers(4)); err != nil {
			log.Println("serve:", err)
		}
	}()
	const adminToken = "cloud-inference-demo"
	go func() {
		if err := privehd.ServeAdmin(ctx2, adminLis, manager2, adminToken); err != nil {
			log.Println("admin:", err)
		}
	}()

	// --- Remote rollback: an operator decides v2 was a mistake and rolls
	// "mnist" back over the authenticated HTTP management plane while an
	// edge client keeps querying. The RCU swap means no request is dropped:
	// frames in flight finish on v2, later frames score on v1.
	c2, err := privehd.Connect(ctx2, privehd.Target{
		Addrs:    []string{dataLis.Addr().String()},
		Model:    "mnist",
		Topology: privehd.TopologySingle,
	}, privehd.WithEdgeOptions(privehd.WithQueryMask(dim/6)))
	if err != nil {
		log.Fatal(err)
	}
	defer c2.Close()
	remote2 := c2.(*privehd.Remote)
	fmt.Printf("edge: reconnected to recovered \"mnist\" v%d\n", remote2.ModelVersion())

	trafficDone := make(chan int)
	stopTraffic := make(chan struct{})
	go func() {
		answered := 0
		for i := 0; ; i++ {
			select {
			case <-stopTraffic:
				trafficDone <- answered
				return
			default:
			}
			if _, _, err := remote2.Predict(data.TestX[i%n]); err != nil {
				log.Fatal("query dropped during rollback: ", err)
			}
			answered++
		}
	}()

	body := adminCall(adminLis.Addr().String(), adminToken, "POST", "/v1/models/mnist/rollback", nil)
	var rolled struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(body, &rolled); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // traffic across the swap
	close(stopTraffic)
	answered := <-trafficDone
	fmt.Printf("admin: rolled \"mnist\" back to v%d over HTTP; %d live queries answered across the swap, none dropped\n",
		rolled.Version, answered)

	// The listing shows the durable result: v1 active again, history kept,
	// live served counters ticking.
	body = adminCall(adminLis.Addr().String(), adminToken, "GET", "/v1/models", nil)
	var listing struct {
		Models []struct {
			Name    string `json:"name"`
			Active  int    `json:"active_version"`
			Served  uint64 `json:"served"`
			History []any  `json:"versions"`
		} `json:"models"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		log.Fatal(err)
	}
	fmt.Println("admin: GET /v1/models after the rollback:")
	for _, m := range listing.Models {
		fmt.Printf("  %-12s active v%d  %d version(s) stored  %d queries served\n",
			m.Name, m.Active, len(m.History), m.Served)
	}
}

// adminCall performs one authenticated management-plane request, failing
// the demo on any non-2xx answer.
func adminCall(addr, token, method, path string, payload []byte) []byte {
	req, err := http.NewRequest(method, "http://"+addr+path, bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("admin %s %s: %d: %s", method, path, resp.StatusCode, body)
	}
	return body
}

// train fits one model under the given quantization scheme ("full" keeps
// full precision); clients obfuscate on their side ("our technique does
// not need to modify or access the trained model").
func train(X [][]float64, y []int, dim, levels int, seed uint64, quant string) *privehd.Pipeline {
	pipeline, err := privehd.New(
		privehd.WithDim(dim),
		privehd.WithLevels(levels),
		privehd.WithSeed(seed),
		privehd.WithEncoding(privehd.Scalar),
		privehd.WithQuantizer(quant),
		privehd.WithRetrain(0),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipeline.Train(X, y); err != nil {
		log.Fatal(err)
	}
	return pipeline
}
