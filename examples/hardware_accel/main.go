// Hardware acceleration: the §III-D path end-to-end. Builds the Fig. 7a
// LUT-6 partial-majority circuit for the ISOLET geometry, measures its
// accuracy impact against the exact popcount on real queries, compares
// measured LUT budgets with the paper's Eq. 15, models Table I throughput/
// energy, and dumps synthesizable Verilog.
//
//	go run ./examples/hardware_accel
package main

import (
	"fmt"
	"log"
	"os"

	"privehd/internal/dataset"
	"privehd/internal/fpga"
	"privehd/internal/hdc"
	"privehd/internal/hdl"
	"privehd/internal/hrand"
	"privehd/internal/netlist"
)

func main() {
	// Full-scale data: the <1% approximation claim needs real margins
	// (weak small-sample models amplify near-tie bit flips).
	data, err := dataset.ISOLETS(dataset.Full)
	if err != nil {
		log.Fatal(err)
	}
	const dim = 8000
	cfg := hdc.Config{Dim: dim, Features: data.Features, Levels: 100, Seed: 5}
	enc, err := hdc.NewLevelEncoder(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Train a full-precision model; queries will be hardware-quantized.
	trainEnc := hdc.EncodeBatch(enc, data.TrainX, 0)
	model, err := hdc.Train(trainEnc, data.TrainY, data.Classes, dim)
	if err != nil {
		log.Fatal(err)
	}

	// Bit-exact simulation: exact popcount majority vs the Fig. 7a
	// approximate circuit on the same partial-product planes.
	circuit := fpga.NewBipolarCircuit(data.Features, hrand.New(6))
	n := 36
	if n > len(data.TestX) {
		n = len(data.TestX)
	}
	exactOK, approxOK := 0, 0
	for i := 0; i < n; i++ {
		planes := enc.BitPlanes(data.TestX[i])
		if model.Predict(fpga.ExactQuantizeEncoding(planes, true)) == data.TestY[i] {
			exactOK++
		}
		if model.Predict(circuit.QuantizeEncoding(planes)) == data.TestY[i] {
			approxOK++
		}
	}
	fmt.Printf("accuracy on %d queries: exact majority %.1f%%, LUT-6 approx %.1f%% "+
		"(paper: <1%% loss)\n", n, 100*float64(exactOK)/float64(n), 100*float64(approxOK)/float64(n))

	// LUT budgets: Eq. 15 vs synthesized netlists.
	div := data.Features
	approxNl, _ := netlist.BuildBipolarApprox(div, hrand.New(7))
	exactNl := netlist.BuildBipolarExact(div, true)
	fmt.Printf("LUT-6 per dimension at d_iv=%d: approx %d (Eq. 15: %.0f), exact %d (model: %.0f) "+
		"— %.1f%% saving\n",
		div, approxNl.NumLUTs(), fpga.BipolarApproxLUTs(div),
		exactNl.NumLUTs(), fpga.BipolarExactLUTs(div),
		100*(1-float64(approxNl.NumLUTs())/float64(exactNl.NumLUTs())))
	fmt.Printf("logic depth: approx %d levels, exact %d levels\n", approxNl.Depth(), exactNl.Depth())

	// Table I platform models.
	w := fpga.Workload{Name: "ISOLET", Features: 617, Dim: 10000, Classes: 26}
	fmt.Println("\nmodeled platform comparison (paper Table I structure):")
	for _, p := range fpga.Platforms() {
		fmt.Printf("  %-16s %12.3g inputs/s  %12.3g J/input\n",
			p.Name, p.Throughput(w), p.EnergyPerInput(w))
	}

	// Emit Verilog for a small instance of the Fig. 7a block.
	demo, _ := netlist.BuildBipolarApprox(36, hrand.New(8))
	f, err := os.Create("bipolar_approx_36.v")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := hdl.WriteVerilog(f, demo); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote bipolar_approx_36.v (%d LUT6 primitives, Xilinx-style)\n", demo.NumLUTs())
}
