// Hardware acceleration: the §III-D path end-to-end through the public
// API. Builds the Fig. 7a LUT-6 partial-majority circuit for the ISOLET
// geometry, measures its accuracy impact against the exact popcount on
// real queries, compares measured LUT budgets with the paper's Eq. 15,
// models Table I throughput/energy, and dumps synthesizable Verilog.
//
//	go run ./examples/hardware_accel
package main

import (
	"fmt"
	"log"
	"os"

	"privehd"
)

func main() {
	// Full-scale data: the <1% approximation claim needs real margins
	// (weak small-sample models amplify near-tie bit flips).
	data, err := privehd.LoadDataset("isolet-s", false)
	if err != nil {
		log.Fatal(err)
	}
	const dim = 8000

	// Train a full-precision model; queries will be hardware-quantized.
	pipeline, err := privehd.New(
		privehd.WithDim(dim),
		privehd.WithLevels(100),
		privehd.WithSeed(5),
		privehd.WithEncoding(privehd.Level),
		privehd.WithQuantizer("full"),
		privehd.WithRetrain(0),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipeline.Train(data.TrainX, data.TrainY); err != nil {
		log.Fatal(err)
	}

	// Bit-exact simulation: exact popcount majority vs the Fig. 7a
	// approximate circuit on the same partial-product planes.
	hw, err := pipeline.Hardware(6)
	if err != nil {
		log.Fatal(err)
	}
	n := 36
	if n > len(data.TestX) {
		n = len(data.TestX)
	}
	exactOK, approxOK := 0, 0
	for i := 0; i < n; i++ {
		exact, err := pipeline.PredictVector(hw.ExactQuantize(data.TestX[i]))
		if err != nil {
			log.Fatal(err)
		}
		if exact == data.TestY[i] {
			exactOK++
		}
		approx, err := pipeline.PredictVector(hw.ApproxQuantize(data.TestX[i]))
		if err != nil {
			log.Fatal(err)
		}
		if approx == data.TestY[i] {
			approxOK++
		}
	}
	fmt.Printf("accuracy on %d queries: exact majority %.1f%%, LUT-6 approx %.1f%% "+
		"(paper: <1%% loss)\n", n, 100*float64(exactOK)/float64(n), 100*float64(approxOK)/float64(n))

	// LUT budgets: Eq. 15 vs synthesized netlists.
	div := data.Features
	approxNl, err := privehd.BuildBipolarApprox(div, 7)
	if err != nil {
		log.Fatal(err)
	}
	exactNl, err := privehd.BuildBipolarExact(div)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LUT-6 per dimension at d_iv=%d: approx %d (Eq. 15: %.0f), exact %d (model: %.0f) "+
		"— %.1f%% saving\n",
		div, approxNl.NumLUTs(), privehd.BipolarApproxLUTs(div),
		exactNl.NumLUTs(), privehd.BipolarExactLUTs(div),
		100*(1-float64(approxNl.NumLUTs())/float64(exactNl.NumLUTs())))
	fmt.Printf("logic depth: approx %d levels, exact %d levels\n", approxNl.Depth(), exactNl.Depth())

	// Table I platform models.
	w := privehd.Workload{Name: "ISOLET", Features: 617, Dim: 10000, Classes: 26}
	fmt.Println("\nmodeled platform comparison (paper Table I structure):")
	for _, p := range privehd.Platforms() {
		fmt.Printf("  %-16s %12.3g inputs/s  %12.3g J/input\n",
			p.Name, p.Throughput(w), p.EnergyPerInput(w))
	}

	// Emit Verilog for a small instance of the Fig. 7a block.
	demo, err := privehd.BuildBipolarApprox(36, 8)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("bipolar_approx_36.v")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := privehd.WriteVerilog(f, demo); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote bipolar_approx_36.v (%d LUT6 primitives, Xilinx-style)\n", demo.NumLUTs())
}
