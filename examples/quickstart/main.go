// Quickstart: train a differentially private Prive-HD classifier on the
// ISOLET stand-in and evaluate it — the 30-line tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privehd"
)

func main() {
	// 1. A workload: 617 features, 26 classes (synthetic ISOLET stand-in).
	data, err := privehd.LoadDataset("isolet-s", false)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The Prive-HD pipeline: level encoding at D=2000, biased-ternary
	//    encoding quantization, prune to 1000 dims, retrain, and release
	//    with (ε=8, δ=1e-5) differential privacy — ε=8 is what the paper
	//    itself reports for ISOLET (Fig. 8a); DP noise scales with √dims
	//    but the signal scales with the training count, so tighter budgets
	//    need more data (Fig. 8d).
	pipeline, err := privehd.New(
		privehd.WithDim(2000),
		privehd.WithLevels(50),
		privehd.WithSeed(42),
		privehd.WithQuantizer("ternary-biased"),
		privehd.WithPruning(1000),
		privehd.WithRetrain(2),
		privehd.WithNoise(8, 1e-5),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipeline.Train(data.TrainX, data.TrainY); err != nil {
		log.Fatal(err)
	}

	// 3. Results: accuracy plus the privacy calibration that produced it.
	report := pipeline.Report()
	acc, err := pipeline.Evaluate(data.TestX, data.TestY)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy: %.1f%% on %d test samples\n", 100*acc, len(data.TestX))
	fmt.Printf("privacy:  (ε=%g, δ=%g) — sensitivity %.1f, noise std %.1f per dimension\n",
		report.Epsilon, report.Delta, report.Sensitivity, report.NoiseStd)
	fmt.Printf("model:    %d dims (%d kept after pruning), %s-quantized encodings\n",
		report.Dim, report.KeptDims, report.Quantizer)

	// 4. Single predictions work too.
	label, err := pipeline.Predict(data.TestX[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample 0: predicted class %d, true class %d\n", label, data.TestY[0])
}
