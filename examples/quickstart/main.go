// Quickstart: train a differentially private Prive-HD classifier on the
// ISOLET stand-in and evaluate it — the 30-line tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privehd/internal/core"
	"privehd/internal/dataset"
	"privehd/internal/dp"
	"privehd/internal/hdc"
	"privehd/internal/quant"
)

func main() {
	// 1. A workload: 617 features, 26 classes (synthetic ISOLET stand-in).
	data, err := dataset.ISOLETS(dataset.Full)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The Prive-HD pipeline: level encoding at D=2000, biased-ternary
	//    encoding quantization, prune to 1000 dims, retrain, and release
	//    with (ε=8, δ=1e-5) differential privacy — ε=8 is what the paper
	//    itself reports for ISOLET (Fig. 8a); DP noise scales with √dims
	//    but the signal scales with the training count, so tighter budgets
	//    need more data (Fig. 8d).
	pipeline, err := core.Train(core.Config{
		HD:            hdc.Config{Dim: 2000, Features: data.Features, Levels: 50, Seed: 42},
		Quantizer:     quant.BiasedTernary{},
		KeepDims:      1000,
		RetrainEpochs: 2,
		DP:            &dp.Params{Epsilon: 8, Delta: 1e-5},
		NoiseSeed:     43,
	}, data)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Results: accuracy plus the privacy calibration that produced it.
	report := pipeline.Report()
	fmt.Printf("accuracy: %.1f%% on %d test samples\n",
		100*pipeline.Evaluate(data), len(data.TestX))
	fmt.Printf("privacy:  (ε=%g, δ=%g) — sensitivity %.1f, noise std %.1f per dimension\n",
		report.Epsilon, report.Delta, report.Sensitivity, report.NoiseStd)
	fmt.Printf("model:    %d dims (%d kept after pruning), %s-quantized encodings\n",
		report.Dim, report.KeptDims, report.Quantizer)

	// 4. Single predictions work too.
	fmt.Printf("sample 0: predicted class %d, true class %d\n",
		pipeline.Predict(data.TestX[0]), data.TestY[0])
}
