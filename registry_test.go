package privehd_test

//lint:file-ignore SA1019 the deprecated constructors stay fully supported; these tests pin their behavior

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privehd"
)

// invertedToyData is toyData with the class labels flipped — a second
// workload whose trained model answers the opposite label, making hot
// swaps observable.
func invertedToyData(n, features int) (X [][]float64, y []int) {
	X, y = toyData(n, features)
	for i := range y {
		y[i] = 1 - y[i]
	}
	return X, y
}

// trainPipeline trains a pipeline on the given data with the toy geometry.
func trainPipeline(t *testing.T, X [][]float64, y []int, opts ...privehd.Option) *privehd.Pipeline {
	t.Helper()
	base := []privehd.Option{
		privehd.WithDim(512),
		privehd.WithLevels(8),
		privehd.WithSeed(11),
		privehd.WithRetrain(1),
	}
	p, err := privehd.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(X, y); err != nil {
		t.Fatal(err)
	}
	return p
}

// startRegistryServer serves a registry on a loopback listener.
func startRegistryServer(t *testing.T, reg *privehd.Registry, opts ...privehd.ServerOption) (string, *privehd.Server, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := privehd.NewRegistryServer(reg, opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	cleanup := func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Error("server did not stop")
		}
	}
	return lis.Addr().String(), srv, cleanup
}

func TestServeRegistryMultiModel(t *testing.T) {
	// Two models with opposite label maps behind one listener; the model
	// name in the handshake decides which answers.
	X, y := toyData(40, 12)
	Xb, yb := invertedToyData(40, 12)
	pa := trainPipeline(t, X, y)
	pb := trainPipeline(t, Xb, yb)

	reg := privehd.NewRegistry()
	if err := reg.Register("straight", pa); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("inverted", pb); err != nil {
		t.Fatal(err)
	}
	addr, srv, cleanup := startRegistryServer(t, reg, privehd.WithServerWorkers(2))
	defer cleanup()

	models := reg.Models()
	if len(models) != 2 || models[0].Name != "inverted" || models[1].Name != "straight" {
		t.Fatalf("Models = %+v", models)
	}
	if models[0].Dim != 512 || models[0].Levels != 8 || models[0].Features != 12 || models[0].Seed != 11 {
		t.Errorf("ModelInfo did not capture the encoder setup: %+v", models[0])
	}

	for _, tc := range []struct {
		model   string
		flipped bool
	}{{"straight", false}, {"inverted", true}, {"", false}} {
		edge, err := pa.Edge()
		if err != nil {
			t.Fatal(err)
		}
		remote, err := privehd.Dial(context.Background(), "tcp", addr, edge, privehd.ForModel(tc.model))
		if err != nil {
			t.Fatalf("dial %q: %v", tc.model, err)
		}
		labels, err := remote.PredictBatch(X)
		if err != nil {
			t.Fatalf("predict via %q: %v", tc.model, err)
		}
		correct := 0
		for i, l := range labels {
			want := y[i]
			if tc.flipped {
				want = 1 - want
			}
			if l == want {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(y)); acc < 0.9 {
			t.Errorf("model %q accuracy %v on its own label map", tc.model, acc)
		}
		if tc.model != "" && remote.Model() != tc.model {
			t.Errorf("remote bound to %q, want %q", remote.Model(), tc.model)
		}
		if tc.model == "" && remote.Model() != "straight" {
			t.Errorf("default dial bound to %q, want straight (first registered)", remote.Model())
		}
		remote.Close()
	}
	if srv.Registry() != reg {
		t.Error("Server.Registry should return the served registry")
	}
}

func TestDialUnknownModel(t *testing.T) {
	pipe, _, _ := toyPipeline(t)
	reg := privehd.NewRegistry()
	if err := reg.Register("only", pipe); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()
	edge, err := pipe.Edge()
	if err != nil {
		t.Fatal(err)
	}
	_, err = privehd.Dial(context.Background(), "tcp", addr, edge, privehd.ForModel("ghost"))
	if !errors.Is(err, privehd.ErrUnknownModel) {
		t.Errorf("dial ghost = %v, want ErrUnknownModel", err)
	}
	if _, err := privehd.DialModel(context.Background(), "tcp", addr, "ghost"); !errors.Is(err, privehd.ErrUnknownModel) {
		t.Errorf("DialModel ghost = %v, want ErrUnknownModel", err)
	}
}

func TestDialModelAutoConfiguresEdge(t *testing.T) {
	// The client knows only the server address and a model name; geometry,
	// encoding, levels and seed all come from the v3 ServerHello. Its
	// auto-configured edge must predict exactly like a hand-built one.
	pipe, X, _ := toyPipeline(t, privehd.WithEncoding(privehd.Scalar), privehd.WithQuantizer("full"))
	reg := privehd.NewRegistry()
	if err := reg.Register("auto", pipe); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg)
	defer cleanup()

	remote, err := privehd.DialModel(context.Background(), "tcp", addr, "auto")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if remote.Dim() != pipe.Dim() || remote.Classes() != pipe.Classes() {
		t.Fatalf("auto-configured remote: dim %d classes %d", remote.Dim(), remote.Classes())
	}
	if remote.Model() != "auto" || remote.ModelVersion() != 1 {
		t.Errorf("bound to %q v%d, want auto v1", remote.Model(), remote.ModelVersion())
	}
	edge := remote.Edge()
	if edge == nil || edge.Dim() != pipe.Dim() || edge.Features() != pipe.Features() {
		t.Fatalf("auto-configured edge missing or wrong geometry")
	}

	// Against the hand-built reference edge: identical prepared queries.
	ref, err := pipe.Edge()
	if err != nil {
		t.Fatal(err)
	}
	refQ, err := ref.Prepare(X[0])
	if err != nil {
		t.Fatal(err)
	}
	autoQ, err := edge.Prepare(X[0])
	if err != nil {
		t.Fatal(err)
	}
	for j := range refQ {
		if refQ[j] != autoQ[j] {
			t.Fatalf("auto-configured edge diverges from reference at dim %d", j)
		}
	}
	if _, _, err := remote.Predict(X[0]); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryHotSwapUnderConcurrentTraffic(t *testing.T) {
	// Clients hammer PredictBatch while the served model is swapped
	// between two opposite-label publications: no request may error, the
	// connection must survive, and both publications must be observed.
	X, y := toyData(40, 12)
	Xb, yb := invertedToyData(40, 12)
	pa := trainPipeline(t, X, y)
	pb := trainPipeline(t, Xb, yb)

	reg := privehd.NewRegistry()
	if err := reg.Register("hot", pa); err != nil {
		t.Fatal(err)
	}
	addr, _, cleanup := startRegistryServer(t, reg, privehd.WithServerWorkers(4))
	defer cleanup()

	const clients = 4
	stop := make(chan struct{})
	var sawStraight, sawInverted atomic.Int64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			edge, err := pa.Edge()
			if err != nil {
				errs <- err
				return
			}
			remote, err := privehd.Dial(context.Background(), "tcp", addr, edge, privehd.ForModel("hot"))
			if err != nil {
				errs <- err
				return
			}
			defer remote.Close()
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				labels, err := remote.PredictBatch(X[:8])
				if err != nil {
					errs <- err
					return
				}
				// The toy task is cleanly separable, so a batch answered
				// by one publication matches either y or 1−y nearly
				// everywhere; tally which.
				match := 0
				for i, l := range labels {
					if l == y[i] {
						match++
					}
				}
				switch {
				case match >= 7:
					sawStraight.Add(1)
				case match <= 1:
					sawInverted.Add(1)
				}
			}
		}()
	}
	pubs := []*privehd.Pipeline{pb, pa}
	for v := 0; v < 30; v++ {
		if err := reg.Swap("hot", pubs[v%2]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("client failed during hot swap: %v", err)
		}
	}
	if sawStraight.Load() == 0 || sawInverted.Load() == 0 {
		t.Errorf("hot swap never observed both publications: straight=%d inverted=%d",
			sawStraight.Load(), sawInverted.Load())
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := privehd.NewRegistry()
	untrained, err := privehd.New()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("u", untrained); !errors.Is(err, privehd.ErrNotTrained) {
		t.Errorf("Register(untrained) = %v, want ErrNotTrained", err)
	}
	pipe, _, _ := toyPipeline(t)
	if err := reg.Register("m", pipe); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("m", pipe); err == nil {
		t.Error("duplicate Register should fail")
	}
	if err := reg.Swap("ghost", pipe); !errors.Is(err, privehd.ErrUnknownModel) {
		t.Errorf("Swap(ghost) = %v, want ErrUnknownModel", err)
	}
	if err := reg.Deregister("ghost"); !errors.Is(err, privehd.ErrUnknownModel) {
		t.Errorf("Deregister(ghost) = %v, want ErrUnknownModel", err)
	}
	if err := reg.SetDefault("m"); err != nil {
		t.Fatal(err)
	}
	if got := reg.DefaultName(); got != "m" {
		t.Errorf("DefaultName = %q", got)
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
}

func TestPredictBatchChunksBeyondMaxBatch(t *testing.T) {
	// A server advertising a tiny MaxBatch must still serve a big
	// PredictBatch: the client transparently splits it into several
	// round trips instead of failing with ErrBatchTooLarge.
	pipe, X, y := toyPipeline(t)
	reg := privehd.NewRegistry()
	if err := reg.Register(privehd.DefaultModelName, pipe); err != nil {
		t.Fatal(err)
	}
	addr, srv, cleanup := startRegistryServer(t, reg, privehd.WithMaxBatch(4))
	defer cleanup()
	edge, err := pipe.Edge()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := privehd.Dial(context.Background(), "tcp", addr, edge)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if remote.MaxBatch() != 4 {
		t.Fatalf("advertised MaxBatch = %d, want 4", remote.MaxBatch())
	}
	labels, err := remote.PredictBatch(X) // 40 queries, 10 chunks
	if err != nil {
		t.Fatalf("PredictBatch over MaxBatch=4: %v", err)
	}
	if len(labels) != len(X) {
		t.Fatalf("answered %d of %d queries", len(labels), len(X))
	}
	correct := 0
	for i, l := range labels {
		if l == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.9 {
		t.Errorf("chunked accuracy %v", acc)
	}
	if srv.Served() != len(X) {
		t.Errorf("Served = %d, want %d", srv.Served(), len(X))
	}
}

func TestTrainOnline(t *testing.T) {
	X, y := toyData(60, 12)
	p, err := privehd.New(
		privehd.WithDim(512), privehd.WithLevels(8), privehd.WithSeed(11),
		privehd.WithClasses(2))
	if err != nil {
		t.Fatal(err)
	}
	// Stream the training set in three batches; the model must be usable
	// between batches and the reported contribution must be a positive,
	// monotonically non-decreasing running maximum.
	var last float64
	for i := 0; i < 3; i++ {
		lo, hi := i*20, (i+1)*20
		contribution, err := p.TrainOnline(X[lo:hi], y[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if contribution <= 0 {
			t.Fatalf("batch %d: contribution = %v, want > 0", i, contribution)
		}
		if contribution < last {
			t.Fatalf("running max contribution decreased: %v after %v", contribution, last)
		}
		last = contribution
		if !p.Trained() {
			t.Fatal("pipeline should be trained after the first online batch")
		}
	}
	acc, err := p.Evaluate(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("online-trained accuracy %v on separable toy task", acc)
	}
	// Online training continues from batch training too.
	pb, Xb, yb := toyPipeline(t)
	if _, err := pb.TrainOnline(Xb, yb); err != nil {
		t.Fatal(err)
	}
	if acc, err := pb.Evaluate(Xb, yb); err != nil || acc < 0.9 {
		t.Errorf("batch+online accuracy %v, err %v", acc, err)
	}
}

func TestTrainOnlineRejectsNoise(t *testing.T) {
	X, y := toyData(10, 12)
	p, err := privehd.New(
		privehd.WithDim(256), privehd.WithLevels(8), privehd.WithNoise(4, 1e-5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnline(X, y); err == nil {
		t.Fatal("TrainOnline with WithNoise must be rejected (weighted bundling voids the pre-calibrated sensitivity)")
	}
}

func TestTrainOnlineValidation(t *testing.T) {
	p, err := privehd.New(privehd.WithDim(256), privehd.WithLevels(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainOnline(nil, nil); err == nil {
		t.Error("empty stream batch should error")
	}
	X, y := toyData(10, 12)
	if _, err := p.TrainOnline(X, y[:5]); err == nil {
		t.Error("mismatched labels should error")
	}
	if _, err := p.TrainOnline(X, y); err != nil {
		t.Fatal(err)
	}
	// Later batches must match the feature width fixed by the first.
	Xw, yw := toyData(4, 7)
	if _, err := p.TrainOnline(Xw, yw); err == nil {
		t.Error("feature-width drift should error")
	}
}

func TestTrainOnlineFailureLeavesPipelineUntouched(t *testing.T) {
	// A rejected first batch must not flip the pipeline to "trained" with
	// an empty model.
	p, err := privehd.New(privehd.WithDim(256), privehd.WithLevels(8))
	if err != nil {
		t.Fatal(err)
	}
	X, y := toyData(10, 12)
	bad := make([][]float64, len(X))
	copy(bad, X)
	bad[3] = bad[3][:7] // wrong width mid-batch
	if _, err := p.TrainOnline(bad, y); err == nil {
		t.Fatal("mixed-width batch should error")
	}
	if p.Trained() {
		t.Fatal("failed first TrainOnline left the pipeline trained")
	}
	// A failed later batch (bad label) must leave the model — and the
	// reported contribution — exactly as before: no half-applied samples.
	if _, err := p.TrainOnline(X, y); err != nil {
		t.Fatal(err)
	}
	before, err := p.ClassVectors()
	if err != nil {
		t.Fatal(err)
	}
	yBad := append([]int(nil), y...)
	yBad[5] = -1
	if _, err := p.TrainOnline(X, yBad); err == nil {
		t.Fatal("negative label should error")
	}
	after, err := p.ClassVectors()
	if err != nil {
		t.Fatal(err)
	}
	for l := range before {
		for j := range before[l] {
			if before[l][j] != after[l][j] {
				t.Fatalf("failed batch mutated class %d dim %d", l, j)
			}
		}
	}
}

func TestTrainOnlineDoesNotMutatePublishedModel(t *testing.T) {
	// A pipeline published in a registry keeps streaming-training locally;
	// the published entry must keep answering from the old publication
	// until Swap, because each TrainOnline batch trains a copy.
	pipe, X, y := toyPipeline(t)
	reg := privehd.NewRegistry()
	if err := reg.Register("live", pipe); err != nil {
		t.Fatal(err)
	}
	published := reg.Models()[0]
	if _, err := pipe.TrainOnline(X, y); err != nil {
		t.Fatal(err)
	}
	// Registry still holds publication v1; swapping publishes the
	// online-refined model as v2.
	if got := reg.Models()[0]; got.Version != published.Version {
		t.Fatalf("TrainOnline bumped the published version to %d", got.Version)
	}
	if err := reg.Swap("live", pipe); err != nil {
		t.Fatal(err)
	}
	if got := reg.Models()[0]; got.Version != 2 {
		t.Errorf("post-swap version = %d, want 2", got.Version)
	}
}
