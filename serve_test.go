package privehd_test

//lint:file-ignore SA1019 the deprecated constructors stay fully supported; these tests pin their behavior

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"privehd"

	"privehd/internal/offload"
)

// startPipelineServer serves a toy pipeline and returns its address, the
// server and a cleanup func.
func startPipelineServer(t *testing.T, p *privehd.Pipeline) (string, *privehd.Server, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := privehd.NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), lis) }()
	cleanup := func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Error("server did not stop")
		}
	}
	return lis.Addr().String(), srv, cleanup
}

func TestServeDialPredict(t *testing.T) {
	pipe, X, y := toyPipeline(t)
	addr, srv, cleanup := startPipelineServer(t, pipe)
	defer cleanup()

	edge, err := pipe.Edge()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := privehd.Dial(context.Background(), "tcp", addr, edge)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if remote.Dim() != pipe.Dim() || remote.Classes() != pipe.Classes() {
		t.Fatalf("handshake advertised dim=%d classes=%d", remote.Dim(), remote.Classes())
	}

	labels, err := remote.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, l := range labels {
		if l == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.9 {
		t.Errorf("remote accuracy %v on separable toy task", acc)
	}
	if srv.Served() != len(X) {
		t.Errorf("Served = %d, want %d", srv.Served(), len(X))
	}

	label, scores, err := remote.Predict(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if label != labels[0] || len(scores) != pipe.Classes() {
		t.Errorf("Predict label=%d scores=%v", label, scores)
	}
}

func TestDialRejectsGeometryMismatch(t *testing.T) {
	pipe, _, _ := toyPipeline(t) // dim 512
	addr, _, cleanup := startPipelineServer(t, pipe)
	defer cleanup()

	wrong, err := privehd.NewEdge(
		privehd.WithFeatures(12), privehd.WithDim(256), privehd.WithLevels(8))
	if err != nil {
		t.Fatal(err)
	}
	_, err = privehd.Dial(context.Background(), "tcp", addr, wrong)
	if !errors.Is(err, privehd.ErrGeometryMismatch) {
		t.Errorf("dim-256 edge against dim-512 server: err = %v, want ErrGeometryMismatch", err)
	}
}

func TestDialRejectsVersionMismatch(t *testing.T) {
	// A fake server that completes the handshake advertising a future
	// protocol version; Dial must refuse it with a typed error.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		dec := gob.NewDecoder(conn)
		var hello offload.Hello
		if err := dec.Decode(&hello); err != nil {
			return
		}
		gob.NewEncoder(conn).Encode(offload.ServerHello{
			Version: privehd.ProtocolVersion + 1,
			Dim:     hello.Dim,
			Classes: 2,
		})
	}()

	edge, err := privehd.NewEdge(
		privehd.WithFeatures(12), privehd.WithDim(512), privehd.WithLevels(8))
	if err != nil {
		t.Fatal(err)
	}
	_, err = privehd.Dial(context.Background(), "tcp", lis.Addr().String(), edge)
	if !errors.Is(err, privehd.ErrVersionMismatch) {
		t.Errorf("v%d server: err = %v, want ErrVersionMismatch", privehd.ProtocolVersion+1, err)
	}
}

func TestServeConcurrentClients(t *testing.T) {
	pipe, X, _ := toyPipeline(t)
	addr, srv, cleanup := startPipelineServer(t, pipe)
	defer cleanup()

	// Reference answers from a lone client; concurrent clients send the
	// same queries and must get byte-identical replies — a concurrency
	// bug corrupting or reordering replies shows up as a mismatch.
	refEdge, err := pipe.Edge()
	if err != nil {
		t.Fatal(err)
	}
	refRemote, err := privehd.Dial(context.Background(), "tcp", addr, refEdge)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refRemote.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	refRemote.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			edge, err := pipe.Edge()
			if err != nil {
				errs <- err
				return
			}
			remote, err := privehd.Dial(context.Background(), "tcp", addr, edge)
			if err != nil {
				errs <- err
				return
			}
			defer remote.Close()
			labels, err := remote.PredictBatch(X)
			if err != nil {
				errs <- err
				return
			}
			for i, l := range labels {
				if l != want[i] {
					errs <- fmt.Errorf("sample %d: predicted %d, reference %d", i, l, want[i])
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, wantServed := srv.Served(), (clients+1)*len(X); got != wantServed {
		t.Errorf("Served = %d, want %d", got, wantServed)
	}
}

func TestServeStopsOnContextCancel(t *testing.T) {
	pipe, X, _ := toyPipeline(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- privehd.Serve(ctx, lis, pipe) }()

	edge, err := pipe.Edge()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := privehd.Dial(context.Background(), "tcp", lis.Addr().String(), edge)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, _, err := remote.Predict(X[0]); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after cancel = %v, want nil", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	if _, err := privehd.Dial(context.Background(), "tcp", lis.Addr().String(), edge); err == nil {
		t.Error("Dial after shutdown should fail")
	}
}

func TestNewServerRequiresTrainedPipeline(t *testing.T) {
	p, err := privehd.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := privehd.NewServer(p); !errors.Is(err, privehd.ErrNotTrained) {
		t.Errorf("NewServer(untrained) = %v, want ErrNotTrained", err)
	}
}
