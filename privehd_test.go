package privehd_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"privehd"
)

// toyData builds a linearly separable two-class task: class 0 lives near
// 0.25, class 1 near 0.75, with a deterministic per-sample wobble.
func toyData(n, features int) (X [][]float64, y []int) {
	for i := 0; i < n; i++ {
		c := i % 2
		center := 0.25 + 0.5*float64(c)
		x := make([]float64, features)
		for k := range x {
			x[k] = center + 0.02*float64((i+k)%5-2)
		}
		X = append(X, x)
		y = append(y, c)
	}
	return X, y
}

// toyPipeline returns a small trained pipeline plus its training data.
func toyPipeline(t *testing.T, opts ...privehd.Option) (*privehd.Pipeline, [][]float64, []int) {
	t.Helper()
	X, y := toyData(40, 12)
	base := []privehd.Option{
		privehd.WithDim(512),
		privehd.WithLevels(8),
		privehd.WithSeed(11),
		privehd.WithRetrain(1),
	}
	p, err := privehd.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(X, y); err != nil {
		t.Fatal(err)
	}
	return p, X, y
}

func TestNewOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []privehd.Option
		want string // substring of the error
	}{
		{"negative dim", []privehd.Option{privehd.WithDim(-1)}, "WithDim"},
		{"one level", []privehd.Option{privehd.WithLevels(1)}, "WithLevels"},
		{"negative features", []privehd.Option{privehd.WithFeatures(-3)}, "WithFeatures"},
		{"negative classes", []privehd.Option{privehd.WithClasses(-1)}, "WithClasses"},
		{"unknown quantizer", []privehd.Option{privehd.WithQuantizer("nope")}, "unknown scheme"},
		{"negative pruning", []privehd.Option{privehd.WithPruning(-5)}, "WithPruning"},
		{"pruning beyond dim", []privehd.Option{privehd.WithDim(100), privehd.WithPruning(200)}, "WithPruning"},
		{"negative retrain", []privehd.Option{privehd.WithRetrain(-1)}, "WithRetrain"},
		{"negative epsilon", []privehd.Option{privehd.WithNoise(-1, 1e-5)}, "epsilon"},
		{"bad delta", []privehd.Option{privehd.WithNoise(1, 0)}, "delta"},
		{"bad encoding", []privehd.Option{privehd.WithEncoding(privehd.Encoding(9))}, "encoding"},
		{"edge-only mask", []privehd.Option{privehd.WithQueryMask(100)}, "WithQueryMask"},
		{"edge-only raw queries", []privehd.Option{privehd.WithRawQueries()}, "WithRawQueries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := privehd.New(tc.opts...)
			if err == nil {
				t.Fatalf("New(%s) succeeded, want error containing %q", tc.name, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The defaults themselves are valid.
	if _, err := privehd.New(); err != nil {
		t.Errorf("New() with defaults: %v", err)
	}
}

func TestNewEdgeOptionValidation(t *testing.T) {
	if _, err := privehd.NewEdge(privehd.WithDim(100)); err == nil ||
		!strings.Contains(err.Error(), "WithFeatures") {
		t.Errorf("NewEdge without features: err = %v, want WithFeatures requirement", err)
	}
	if _, err := privehd.NewEdge(privehd.WithFeatures(10), privehd.WithPruning(5)); err == nil ||
		!strings.Contains(err.Error(), "WithPruning") {
		t.Errorf("NewEdge with pipeline-only option: err = %v, want WithPruning rejection", err)
	}
	if _, err := privehd.NewEdge(privehd.WithFeatures(10), privehd.WithDim(100),
		privehd.WithQueryMask(100)); err == nil ||
		!strings.Contains(err.Error(), "WithQueryMask") {
		t.Errorf("NewEdge with full-dim mask: err = %v, want range error", err)
	}
	if _, err := privehd.NewEdge(privehd.WithFeatures(10), privehd.WithDim(256),
		privehd.WithLevels(4), privehd.WithQueryMask(64)); err != nil {
		t.Errorf("valid NewEdge: %v", err)
	}
}

func TestTrainPredictEvaluate(t *testing.T) {
	p, err := privehd.New(privehd.WithDim(512), privehd.WithLevels(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{0.5}); !errors.Is(err, privehd.ErrNotTrained) {
		t.Errorf("Predict before Train: err = %v, want ErrNotTrained", err)
	}
	if _, err := p.PredictBatch(nil); !errors.Is(err, privehd.ErrNotTrained) {
		t.Errorf("PredictBatch before Train: err = %v, want ErrNotTrained", err)
	}
	if p.Trained() {
		t.Error("Trained() true before Train")
	}

	pipe, X, y := toyPipeline(t)
	if !pipe.Trained() {
		t.Fatal("Trained() false after Train")
	}
	if pipe.Classes() != 2 || pipe.Features() != 12 {
		t.Fatalf("inferred geometry classes=%d features=%d", pipe.Classes(), pipe.Features())
	}
	acc, err := pipe.Evaluate(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("training accuracy %v on a separable toy task", acc)
	}
	// Batch prediction matches one-by-one prediction exactly.
	batch, err := pipe.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		single, err := pipe.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != single {
			t.Fatalf("sample %d: batch %d != single %d", i, batch[i], single)
		}
	}
	// Wrong feature width is rejected.
	if _, err := pipe.Predict([]float64{0.1}); err == nil {
		t.Error("Predict with wrong width should fail")
	}
	if _, err := pipe.PredictBatch([][]float64{{0.1}}); err == nil {
		t.Error("PredictBatch with wrong width should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	pipe, X, _ := toyPipeline(t,
		privehd.WithQuantizer("ternary-biased"),
		privehd.WithPruning(256),
		privehd.WithNoise(8, 1e-5),
	)
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := privehd.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim() != pipe.Dim() || loaded.Classes() != pipe.Classes() ||
		loaded.Features() != pipe.Features() {
		t.Fatalf("loaded geometry dim=%d classes=%d features=%d",
			loaded.Dim(), loaded.Classes(), loaded.Features())
	}
	if lr, pr := loaded.Report(), pipe.Report(); lr != pr {
		// Reports hold only comparable scalar fields.
		t.Errorf("loaded report %+v != saved %+v", lr, pr)
	}
	want, err := pipe.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: loaded pipeline predicts %d, original %d", i, got[i], want[i])
		}
	}

	// Untrained pipelines don't serialize.
	empty, err := privehd.New()
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Save(&bytes.Buffer{}); !errors.Is(err, privehd.ErrNotTrained) {
		t.Errorf("Save untrained: err = %v, want ErrNotTrained", err)
	}
	// Garbage doesn't load.
	if _, err := privehd.Load(bytes.NewReader([]byte("not a pipeline"))); err == nil {
		t.Error("Load of garbage should fail")
	}
}

func TestCalibration(t *testing.T) {
	p, err := privehd.New(privehd.WithFeatures(100), privehd.WithNoise(1, 1e-5),
		privehd.WithDim(2000), privehd.WithPruning(1000))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := p.Calibration()
	if err != nil {
		t.Fatal(err)
	}
	if cal.KeptDims != 1000 || cal.Sensitivity <= 0 || cal.SigmaFactor <= 0 {
		t.Errorf("calibration = %+v", cal)
	}
	if cal.RawSensitivity <= cal.Sensitivity {
		t.Errorf("quantization should shrink sensitivity: raw %v vs %v",
			cal.RawSensitivity, cal.Sensitivity)
	}

	// Missing features or budget is an error.
	noFeat, _ := privehd.New(privehd.WithNoise(1, 1e-5))
	if _, err := noFeat.Calibration(); err == nil {
		t.Error("Calibration without features should fail")
	}
	noEps, _ := privehd.New(privehd.WithFeatures(100))
	if _, err := noEps.Calibration(); err == nil {
		t.Error("Calibration without a budget should fail")
	}
}

func TestEdgeObfuscation(t *testing.T) {
	// Scalar encoding (Eq. 2a) is the form the reconstruction analysis is
	// written against.
	pipe, X, _ := toyPipeline(t, privehd.WithEncoding(privehd.Scalar))
	edge, err := pipe.Edge(privehd.WithQueryMask(128))
	if err != nil {
		t.Fatal(err)
	}
	q, err := edge.Prepare(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != pipe.Dim() {
		t.Fatalf("prepared query dim %d, want %d", len(q), pipe.Dim())
	}
	zeros := 0
	for _, v := range q {
		switch v {
		case 0:
			zeros++
		case 1, -1:
		default:
			t.Fatalf("obfuscated query leaked unquantized value %v", v)
		}
	}
	if zeros < 128 {
		t.Errorf("query has %d zeros, want ≥ mask size 128", zeros)
	}
	// The eavesdropper's reconstruction round-trip runs end to end. (That
	// obfuscation degrades reconstruction on real workloads is asserted by
	// the offload end-to-end test and TestFullLifecycle; this toy task is
	// too small for a stable MSE comparison.)
	truth := edge.QuantizeTruth(X[0])
	recon, err := edge.Reconstruct(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != edge.Features() {
		t.Fatalf("reconstruction has %d features, want %d", len(recon), edge.Features())
	}
	if m := privehd.MeasureReconstruction(truth, recon); m.MSE <= 0 {
		t.Errorf("obfuscated reconstruction suspiciously exact: %+v", m)
	}

	// An untrained pipeline without features cannot derive an edge.
	bare, _ := privehd.New()
	if _, err := bare.Edge(); err == nil {
		t.Error("Edge from a featureless pipeline should fail")
	}
}

func TestPipelineDeterminism(t *testing.T) {
	// Equal options and seeds give byte-identical behavior.
	p1, X, _ := toyPipeline(t, privehd.WithQuantizer("bipolar"))
	p2, _, _ := toyPipeline(t, privehd.WithQuantizer("bipolar"))
	l1, err := p1.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p2.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("sample %d: %d vs %d with equal seeds", i, l1[i], l2[i])
		}
	}
}
