package privehd_test

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"privehd"

	"privehd/internal/chaos"
	"privehd/internal/offload"
)

// scrapeDeadlineRejections reads the server-side deadline-shed counter
// from the process-wide exposition, the same way an operator would.
func scrapeDeadlineRejections(t *testing.T) uint64 {
	t.Helper()
	rec := httptest.NewRecorder()
	privehd.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, `privehd_server_rejections_total{reason="deadline"}`) {
			fields := strings.Fields(line)
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("unparseable exposition line %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestChaosClusterAcceptance is the fault-injection acceptance gate: a
// three-replica fleet behind deterministic chaos (injected latency,
// stalls, mid-frame cuts, refused accepts) serves a hedged, deadlined
// cluster client. Every request must either succeed or fail with a typed
// deadline error — transport errors mean a fault leaked past the
// resilience stack — and a server-side shed must be observable through
// the public rejections metric.
func TestChaosClusterAcceptance(t *testing.T) {
	pipe, X, _ := toyPipeline(t)
	reg := privehd.NewRegistry()
	if err := reg.Register("toy", pipe); err != nil {
		t.Fatal(err)
	}

	sctx, scancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		scancel()
		wg.Wait()
	}()
	var addrs []string
	for i := 0; i < 3; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, lis.Addr().String())
		wrapped := chaos.Wrap(lis, chaos.Config{
			Seed:        7 + int64(i)<<32, // replayable, but each replica fails independently
			Latency:     2 * time.Millisecond,
			LatencyProb: 0.3,
			Stall:       50 * time.Millisecond,
			StallProb:   0.05,
			CutProb:     0.03,
			RefuseProb:  0.03,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			privehd.ServeRegistry(sctx, wrapped, reg,
				privehd.WithMaxBatch(1024), privehd.WithServerWorkers(1))
		}()
	}

	cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
	cl, err := privehd.Connect(cctx,
		privehd.Target{Addrs: addrs, Model: "toy", Topology: privehd.TopologyCluster, Hedge: true},
		privehd.WithHedging(5*time.Millisecond))
	ccancel()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Deadlined, hedged load: every request resolves — success or a typed
	// deadline failure — and nothing surfaces a raw transport error.
	const workers, perWorker = 8, 40
	type tally struct {
		ok, deadline int
		other        []error
	}
	results := make(chan tally, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var tl tally
			for i := 0; i < perWorker; i++ {
				q := X[(w*perWorker+i)%len(X)]
				rctx, rcancel := context.WithTimeout(context.Background(), time.Second)
				_, _, err := cl.PredictContext(rctx, q)
				rcancel()
				switch {
				case err == nil:
					tl.ok++
				case errors.Is(err, privehd.ErrDeadlineExceeded),
					errors.Is(err, context.DeadlineExceeded):
					tl.deadline++
				default:
					tl.other = append(tl.other, err)
				}
			}
			results <- tl
		}(w)
	}
	var total tally
	for w := 0; w < workers; w++ {
		tl := <-results
		total.ok += tl.ok
		total.deadline += tl.deadline
		total.other = append(total.other, tl.other...)
	}
	if resolved := total.ok + total.deadline + len(total.other); resolved != workers*perWorker {
		t.Fatalf("dropped requests: %d resolved of %d", resolved, workers*perWorker)
	}
	if len(total.other) > 0 {
		t.Fatalf("%d untyped failures leaked through the resilience stack under chaos, first: %v",
			len(total.other), total.other[0])
	}
	if total.ok == 0 {
		t.Fatal("nothing succeeded under chaos")
	}
	t.Logf("chaos volley: %d ok, %d typed deadline failures", total.ok, total.deadline)

	// Server-side shed, observed through the metric an operator would
	// watch: a frame whose stamped budget cannot cover its queue drains
	// comes back with the typed deadline rejection. Chaos may cut or
	// refuse any given attempt, so retry across replicas.
	before := scrapeDeadlineRejections(t)
	shed := false
	for i := 0; i < 30 && !shed; i++ {
		shed = shedOneFrame(addrs[i%len(addrs)])
	}
	if !shed {
		t.Fatal("no replica ever shed the over-budget frame")
	}
	if after := scrapeDeadlineRejections(t); after <= before {
		t.Fatalf(`rejections{reason="deadline"} never moved: %d → %d`, before, after)
	}
}

// shedOneFrame sends one frame whose hand-stamped budget (what a real
// client writes from its context deadline) cannot cover scoring 512
// queries on a single worker, and reports whether the server shed it.
// Any chaos-induced hiccup — refused accept, cut, stall past the conn
// deadline — just returns false so the caller retries.
func shedOneFrame(addr string) bool {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return false
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte{'P', 'H', 'D', offload.ProtocolVersion}); err != nil {
		return false
	}
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(offload.Hello{Model: "toy", Dim: 512}); err != nil {
		return false
	}
	var sh offload.ServerHello
	if err := dec.Decode(&sh); err != nil || sh.Code != "" {
		return false
	}
	q := make([]int8, 512)
	q[0] = 1
	req := offload.Request{ID: 1, BudgetNs: int64(100 * time.Microsecond),
		Queries: make([]offload.Query, 512)}
	for i := range req.Queries {
		req.Queries[i] = offload.Query{Packed: q}
	}
	if err := enc.Encode(req); err != nil {
		return false
	}
	var reply offload.Reply
	if err := dec.Decode(&reply); err != nil {
		return false
	}
	return reply.Code == "deadline"
}
