package privehd

import (
	"context"
	"fmt"
	"time"

	"privehd/internal/cluster"
	"privehd/internal/offload"
)

// Pool multiplexes any number of concurrent callers over a small, reused
// set of pipelined connections to one serving address — the client-side
// scaling layer for heavy traffic: instead of a connection per caller,
// requests from every goroutine interleave over (at most) WithPoolSize
// connections with per-request IDs, new connections are dialed only when
// the live ones are saturated, idle ones are reaped, and broken ones are
// redialed with exponential backoff. An operation that fails with
// ErrTransport is retried once on a different connection (classification
// is idempotent). All methods are safe for concurrent use.
//
// Like Remote, a Pool pairs the connections with the local Edge that
// obfuscates queries before they leave the device — nothing about the
// §III-C privacy story changes, only how many sockets carry the obfuscated
// vectors.
type Pool struct {
	edge *Edge
	pool *cluster.Pool
}

// PoolOption configures DialPool (and the per-replica pools of
// DialCluster).
type PoolOption func(*poolConfig)

type poolConfig struct {
	model       string
	size        int
	maxPerConn  int
	ioTimeout   time.Duration
	idleTimeout time.Duration
	edgeOpts    []Option
}

// toInternal maps the public options to the internal pool configuration
// (0 = internal default, negative = disabled).
func (c poolConfig) toInternal() cluster.PoolConfig {
	return cluster.PoolConfig{
		Size:               c.size,
		MaxInFlightPerConn: c.maxPerConn,
		IOTimeout:          c.ioTimeout,
		IdleTimeout:        c.idleTimeout,
	}
}

// WithPoolModel selects which served model the pool binds to (default: the
// server's default model). Unknown names are rejected with ErrUnknownModel
// when the first connection handshakes.
func WithPoolModel(name string) PoolOption {
	return func(c *poolConfig) { c.model = name }
}

// WithPoolSize bounds how many connections the pool keeps (default 4).
func WithPoolSize(n int) PoolOption {
	return func(c *poolConfig) {
		if n > 0 {
			c.size = n
		}
	}
}

// WithPoolMaxInFlight sets how many requests may be outstanding on one
// pooled connection before the pool prefers opening another (default 32).
func WithPoolMaxInFlight(n int) PoolOption {
	return func(c *poolConfig) {
		if n > 0 {
			c.maxPerConn = n
		}
	}
}

// WithPoolIOTimeout bounds reply progress on pooled connections (see
// WithIOTimeout). The pool defaults to 30s so a hung replica can never
// block a Predict forever; pass d ≤ 0 to disable the bound.
func WithPoolIOTimeout(d time.Duration) PoolOption {
	return func(c *poolConfig) {
		if d <= 0 {
			c.ioTimeout = -1
			return
		}
		c.ioTimeout = d
	}
}

// WithPoolIdleTimeout sets how long an unused pooled connection may linger
// before being closed (default 90s); pass d ≤ 0 to keep idle connections
// forever.
func WithPoolIdleTimeout(d time.Duration) PoolOption {
	return func(c *poolConfig) {
		if d <= 0 {
			c.idleTimeout = -1
			return
		}
		c.idleTimeout = d
	}
}

// WithPoolEdge supplies pipeline options — typically the §III-C defences
// WithQueryMask and WithRawQueries — for the edge a nil-edge DialPool or
// DialCluster auto-configures from the server's advertised encoder setup.
// It is ignored when an explicit Edge is passed.
func WithPoolEdge(opts ...Option) PoolOption {
	return func(c *poolConfig) { c.edgeOpts = append(c.edgeOpts, opts...) }
}

// DialPool connects a pool of reused, pipelined connections to one serving
// address and validates the first handshake eagerly (the context bounds
// it). Pass the Edge whose obfuscated queries the pool should carry, or
// nil to auto-configure one from the server's advertised encoder setup
// exactly like DialModel (layer defences on with WithPoolEdge).
//
// Deprecated: use Connect with TopologyPool — the Target plus
// WithConnectPool options cover this constructor exactly.
func DialPool(ctx context.Context, network, addr string, edge *Edge, opts ...PoolOption) (*Pool, error) {
	var cfg poolConfig
	for _, o := range opts {
		o(&cfg)
	}
	pcfg := cfg.toInternal()
	pcfg.Network = network
	pcfg.Addr = addr
	pcfg.Hello = offload.Hello{Model: cfg.model}
	if edge != nil {
		pcfg.Hello.Dim = edge.Dim()
	}
	pool := cluster.NewPool(pcfg)
	hello, err := pool.Hello(ctx)
	if err != nil {
		pool.Close()
		return nil, err
	}
	if edge == nil {
		edge, err = edgeFromServerHello(hello, cfg.edgeOpts...)
		if err != nil {
			pool.Close()
			return nil, err
		}
	}
	return &Pool{edge: edge, pool: pool}, nil
}

// Edge returns the edge obfuscating the pool's queries.
func (p *Pool) Edge() *Edge { return p.edge }

// Model returns the name of the served model the pool is bound to.
func (p *Pool) Model() string {
	h, err := p.pool.Hello(context.Background())
	if err != nil {
		return ""
	}
	return h.Model
}

// Predict obfuscates one input on the edge and classifies it remotely on
// some pooled connection.
func (p *Pool) Predict(x []float64) (int, []float64, error) {
	q, err := p.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return p.pool.Classify(context.Background(), q)
}

// PredictContext is Predict bounded by ctx: the remaining context budget
// rides on the request frame (Request.BudgetNs) so the server sheds work
// that can no longer answer in time, and cancellation aborts the wait. A
// blown deadline surfaces as ErrDeadlineExceeded.
func (p *Pool) PredictContext(ctx context.Context, x []float64) (int, []float64, error) {
	q, err := p.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return p.pool.Classify(ctx, q)
}

// PredictBatch obfuscates a batch of inputs and classifies them remotely,
// pipelining the chunks over one pooled connection.
func (p *Pool) PredictBatch(X [][]float64) ([]int, error) {
	qs, err := p.edge.PrepareBatch(X)
	if err != nil {
		return nil, err
	}
	return p.pool.ClassifyBatch(context.Background(), qs)
}

// PredictPrepared classifies an already-prepared query hypervector.
func (p *Pool) PredictPrepared(q []float64) (int, []float64, error) {
	return p.PredictPreparedContext(context.Background(), q)
}

// PredictPreparedContext is PredictPrepared bounded by ctx (see
// PredictContext for the deadline semantics).
func (p *Pool) PredictPreparedContext(ctx context.Context, q []float64) (int, []float64, error) {
	if len(q) != p.edge.Dim() {
		return 0, nil, fmt.Errorf("privehd: prepared query has dim %d, edge dim %d", len(q), p.edge.Dim())
	}
	return p.pool.Classify(ctx, q)
}

// ListModels asks the pooled server for its registry listing (see
// Remote.ListModels).
func (p *Pool) ListModels() ([]ModelInfo, error) {
	listings, err := p.pool.ListModels(context.Background())
	if err != nil {
		return nil, err
	}
	return modelInfosFromListings(listings), nil
}

// PoolStats is a snapshot of a pool's connection state: live connections,
// operations currently in flight, and total successful dials (more dials
// than connections means broken or idle-reaped connections were replaced).
type PoolStats = cluster.PoolStats

// Stats returns a snapshot of the pool's connection state.
func (p *Pool) Stats() PoolStats { return p.pool.Stats() }

// Traces snapshots the process-wide client-side flight recorder.
func (p *Pool) Traces() TraceSnapshot { return ClientTraces() }

// Close closes every pooled connection; in-flight calls fail with
// ErrTransport.
func (p *Pool) Close() error { return p.pool.Close() }
