package privehd

import (
	"context"
	"fmt"
	"net"

	"privehd/internal/offload"
)

// ProtocolVersion is the version byte of the offloaded-inference wire
// protocol. Serve and Dial handshake on it and reject mismatched peers.
const ProtocolVersion = offload.ProtocolVersion

// Typed protocol failures, surfaced by Dial and Remote calls; test with
// errors.Is.
var (
	// ErrVersionMismatch reports a peer speaking a different protocol
	// version.
	ErrVersionMismatch = offload.ErrVersionMismatch
	// ErrGeometryMismatch reports an edge whose encoder dimensionality or
	// class count does not match the served model.
	ErrGeometryMismatch = offload.ErrGeometryMismatch
	// ErrSymbolOutOfRange reports a packed query carrying a symbol outside
	// the advertised −2…+1 alphabet.
	ErrSymbolOutOfRange = offload.ErrSymbolOutOfRange
	// ErrBatchTooLarge reports a request exceeding the server's advertised
	// batch limit.
	ErrBatchTooLarge = offload.ErrBatchTooLarge
)

// ServerOption configures a Server.
type ServerOption = offload.ServerOption

// WithMaxBatch sets the per-request query limit the server advertises in
// its handshake and enforces (default 256).
func WithMaxBatch(n int) ServerOption { return offload.WithMaxBatch(n) }

// Server hosts a trained pipeline's model for offloaded inference
// (§III-C): goroutine-per-connection, versioned handshake, batched
// queries.
type Server struct {
	inner *offload.Server
}

// NewServer wraps a trained pipeline for serving. The pipeline's model
// must not be retrained while the server runs.
func NewServer(p *Pipeline, opts ...ServerOption) (*Server, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cp, err := p.trained()
	if err != nil {
		return nil, err
	}
	return &Server{inner: offload.NewServer(cp.Model(), opts...)}, nil
}

// Serve accepts connections on lis until ctx is cancelled, the listener
// fails, or Close/Shutdown is called. Each connection is handled on its
// own goroutine and may stream any number of batched requests. Serve
// returns nil after a clean stop.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	return s.inner.Serve(ctx, lis)
}

// Shutdown stops accepting connections, lets in-flight requests finish
// their replies, then closes all connections. It returns ctx.Err() if the
// context expires first.
func (s *Server) Shutdown(ctx context.Context) error { return s.inner.Shutdown(ctx) }

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error { return s.inner.Close() }

// Served returns how many queries have been answered.
func (s *Server) Served() int { return s.inner.Served() }

// Serve hosts the trained pipeline on lis until ctx is cancelled — the
// one-call cloud side of the §III-C split.
func Serve(ctx context.Context, lis net.Listener, p *Pipeline, opts ...ServerOption) error {
	s, err := NewServer(p, opts...)
	if err != nil {
		return err
	}
	return s.Serve(ctx, lis)
}

// Remote is a connection to a Serve instance, paired with the local Edge
// that obfuscates queries before they leave the device.
type Remote struct {
	edge   *Edge
	client *offload.Client
}

// Dial connects an edge to a serving pipeline and performs the protocol
// handshake, advertising the edge's encoder geometry. Version or geometry
// mismatches surface as ErrVersionMismatch/ErrGeometryMismatch instead of
// garbled streams. The context bounds connecting and handshaking.
func Dial(ctx context.Context, network, addr string, edge *Edge) (*Remote, error) {
	client, err := offload.Dial(ctx, network, addr, edge.Dim(), 0)
	if err != nil {
		return nil, err
	}
	return &Remote{edge: edge, client: client}, nil
}

// NewRemote performs the handshake over an existing connection — useful
// for tapped connections (Tap) and in-memory pipes in tests.
func NewRemote(conn net.Conn, edge *Edge) (*Remote, error) {
	client, err := offload.NewClient(conn, edge.Dim(), 0)
	if err != nil {
		return nil, err
	}
	return &Remote{edge: edge, client: client}, nil
}

// Dim returns the served model's dimensionality, learned in the handshake.
func (r *Remote) Dim() int { return r.client.Dim() }

// Classes returns the served model's class count, learned in the
// handshake.
func (r *Remote) Classes() int { return r.client.Classes() }

// MaxBatch returns the server's advertised per-request query limit.
func (r *Remote) MaxBatch() int { return r.client.MaxBatch() }

// Predict obfuscates one input on the edge and classifies it remotely,
// returning the predicted label and per-class scores.
func (r *Remote) Predict(x []float64) (int, []float64, error) {
	q, err := r.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return r.client.Classify(q)
}

// PredictBatch obfuscates a batch of inputs and classifies them remotely,
// sending up to MaxBatch query vectors per round trip.
func (r *Remote) PredictBatch(X [][]float64) ([]int, error) {
	qs, err := r.edge.PrepareBatch(X)
	if err != nil {
		return nil, err
	}
	return r.client.ClassifyBatch(qs)
}

// PredictPrepared classifies an already-prepared query hypervector.
func (r *Remote) PredictPrepared(q []float64) (int, []float64, error) {
	if len(q) != r.edge.Dim() {
		return 0, nil, fmt.Errorf("privehd: prepared query has dim %d, edge dim %d", len(q), r.edge.Dim())
	}
	return r.client.Classify(q)
}

// Close closes the connection.
func (r *Remote) Close() error { return r.client.Close() }

// Wiretap records every query hypervector crossing a tapped connection —
// the honest-but-curious channel observer the §III-C obfuscation defends
// against.
type Wiretap = offload.Wiretap

// Tap wraps the client side of a connection so every outgoing query is
// also delivered to the returned Wiretap. Hand the wrapped conn to
// NewRemote.
func Tap(conn net.Conn) (net.Conn, *Wiretap) { return offload.Tap(conn) }
