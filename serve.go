package privehd

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"time"

	"privehd/internal/offload"
)

// ProtocolVersion is the version byte of the offloaded-inference wire
// protocol (v3: model names in the handshake, encoder setup in the
// answer). Serve and Dial handshake on it; servers also accept v2 clients
// against the default model, and reject everything else.
const ProtocolVersion = offload.ProtocolVersion

// Typed protocol failures, surfaced by Dial and Remote calls; test with
// errors.Is. ErrUnknownModel lives in registry.go beside the Registry.
var (
	// ErrVersionMismatch reports a peer speaking a different protocol
	// version.
	ErrVersionMismatch = offload.ErrVersionMismatch
	// ErrGeometryMismatch reports an edge whose encoder dimensionality or
	// class count does not match the served model.
	ErrGeometryMismatch = offload.ErrGeometryMismatch
	// ErrSymbolOutOfRange reports a packed query carrying a symbol outside
	// the advertised −2…+1 alphabet.
	ErrSymbolOutOfRange = offload.ErrSymbolOutOfRange
	// ErrBatchTooLarge reports a request exceeding the server's advertised
	// batch limit.
	ErrBatchTooLarge = offload.ErrBatchTooLarge
	// ErrTransport reports a connection-level failure — dial, send,
	// receive, i/o timeout, or a closed client — as opposed to a typed
	// protocol rejection. Classification is idempotent, so operations
	// failing with ErrTransport are safe to retry elsewhere; Pool and
	// Cluster do exactly that. Errors that do NOT wrap ErrTransport came
	// from a live server and would repeat on any replica.
	ErrTransport = offload.ErrTransport
	// ErrIOTimeout reports that a connection configured with WithIOTimeout
	// saw no reply progress for the full timeout while requests were in
	// flight. It always also wraps ErrTransport.
	ErrIOTimeout = offload.ErrIOTimeout
	// ErrOverloaded reports a server that refused the connection because it
	// is at its configured connection limit (WithMaxConns). It wraps
	// ErrTransport: the rejection is a property of that server right now,
	// so pools back off and clusters fail the operation over to another
	// replica.
	ErrOverloaded = offload.ErrOverloaded
	// ErrDeadlineExceeded reports a request whose context deadline ran out:
	// either the client's remaining budget was exhausted before sending, the
	// wait was cut short by the deadline, or the server shed the work
	// because its stamped budget (Request.BudgetNs) expired in queue. It
	// deliberately does NOT wrap ErrTransport — retrying a request that is
	// already out of time only wastes fleet capacity.
	ErrDeadlineExceeded = offload.ErrDeadlineExceeded
)

// ServerOption configures a Server.
type ServerOption = offload.ServerOption

// WithMaxBatch sets the per-request query limit the server advertises in
// its handshake and enforces (default 256).
func WithMaxBatch(n int) ServerOption { return offload.WithMaxBatch(n) }

// WithServerWorkers bounds the server's shared scoring pool (default
// GOMAXPROCS): at most n queries are scored concurrently across every
// connection, and each query is dispatched to the pool individually, so
// one connection's large batch cannot monopolize the server. (The pipeline
// option WithWorkers is the client/training-side counterpart.)
func WithServerWorkers(n int) ServerOption { return offload.WithWorkers(n) }

// WithMaxConns bounds how many connections the server holds open at once
// (default unlimited). Connections arriving past the limit are answered
// with a typed overload rejection (ErrOverloaded — retryable, so pools
// back off and clusters fail over) and closed, instead of hanging until a
// timeout.
func WithMaxConns(n int) ServerOption { return offload.WithMaxConns(n) }

// WithSlowRequestLog emits a structured warning for every request whose
// server-side residency meets threshold: trace ID, model, operation, peer,
// outcome and the per-stage latency breakdown. It fires for every slow
// request regardless of the trace sampling rate — the flight recorder and
// this log are how untraced slow requests still get caught.
func WithSlowRequestLog(log *slog.Logger, threshold time.Duration) ServerOption {
	return offload.WithSlowRequestLog(log, threshold)
}

// Server hosts model serving for offloaded inference (§III-C): versioned
// handshake, batched queries, a reader goroutine per connection and a
// bounded scoring worker pool shared across connections. Behind every
// server sits a Registry — a single-pipeline server (NewServer) is a
// registry with one model published under DefaultModelName.
type Server struct {
	inner *offload.Server
	reg   *Registry
}

// NewServer wraps a trained pipeline for serving, publishing its model
// under DefaultModelName in a fresh registry (reachable via Registry, so
// even a single-model server can be hot-swapped later). The pipeline's
// model must not be retrained while published; Train builds a fresh model,
// so retrain-then-Swap is safe.
func NewServer(p *Pipeline, opts ...ServerOption) (*Server, error) {
	reg := NewRegistry()
	if err := reg.Register(DefaultModelName, p); err != nil {
		return nil, err
	}
	return NewRegistryServer(reg, opts...), nil
}

// Registry returns the model registry behind the server; Register, Swap
// and Deregister on it take effect live.
func (s *Server) Registry() *Registry { return s.reg }

// Serve accepts connections on lis until ctx is cancelled, the listener
// fails, or Close/Shutdown is called. Each connection is handled on its
// own goroutine and may stream any number of batched requests. Serve
// returns nil after a clean stop.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	return s.inner.Serve(ctx, lis)
}

// Shutdown stops accepting connections, lets in-flight requests finish
// their replies, then closes all connections. It returns ctx.Err() if the
// context expires first.
func (s *Server) Shutdown(ctx context.Context) error { return s.inner.Shutdown(ctx) }

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error { return s.inner.Close() }

// Served returns how many queries have been answered.
func (s *Server) Served() int { return s.inner.Served() }

// Serve hosts the trained pipeline on lis until ctx is cancelled — the
// one-call cloud side of the §III-C split.
func Serve(ctx context.Context, lis net.Listener, p *Pipeline, opts ...ServerOption) error {
	s, err := NewServer(p, opts...)
	if err != nil {
		return err
	}
	return s.Serve(ctx, lis)
}

// Remote is a connection to a Serve/ServeRegistry instance, paired with
// the local Edge that obfuscates queries before they leave the device.
// Remotes are safe for concurrent use: the underlying protocol (v4)
// pipelines requests with per-request IDs over dedicated send/recv
// goroutines, so concurrent Predict calls share the one connection
// without waiting on each other's round trips. For a bounded set of
// reused connections use DialPool; for replica failover use DialCluster.
type Remote struct {
	edge   *Edge
	client *offload.Client
}

// DialOption configures Dial and NewRemote.
type DialOption func(*dialConfig)

type dialConfig struct {
	model     string
	ioTimeout time.Duration
}

// ForModel selects which served model the connection binds to (the v3+
// handshake carries the name). Without it the server's default model
// answers. Unknown names are rejected with ErrUnknownModel.
func ForModel(name string) DialOption {
	return func(c *dialConfig) { c.model = name }
}

// WithIOTimeout bounds how long the connection waits for progress: each
// frame write must complete within d, and whenever requests are in flight
// a reply must arrive within d of the last one (idle connections never
// time out). Without it a hung server blocks Predict forever. On expiry
// every in-flight call fails with an error wrapping ErrIOTimeout. Pools
// and clusters default this to 30s; a bare Dial defaults to none.
func WithIOTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.ioTimeout = d }
}

// clientOpts converts the dial configuration to protocol client options.
func (c dialConfig) clientOpts() []offload.ClientOption {
	var opts []offload.ClientOption
	if c.ioTimeout > 0 {
		opts = append(opts, offload.WithIOTimeout(c.ioTimeout))
	}
	return opts
}

// Dial connects an edge to a serving pipeline and performs the protocol
// handshake, advertising the edge's encoder geometry and the requested
// model name (ForModel; default model otherwise). Version or geometry
// mismatches and unknown models surface as typed errors
// (ErrVersionMismatch, ErrGeometryMismatch, ErrUnknownModel) instead of
// garbled streams. The context bounds connecting and handshaking.
//
// Deprecated: use Connect with TopologySingle and WithEdge — one
// constructor covers every serving topology. Dial remains for
// compatibility and behaves identically.
func Dial(ctx context.Context, network, addr string, edge *Edge, opts ...DialOption) (*Remote, error) {
	var cfg dialConfig
	for _, o := range opts {
		o(&cfg)
	}
	client, err := offload.Dial(ctx, network, addr, offload.Hello{Dim: edge.Dim(), Model: cfg.model}, cfg.clientOpts()...)
	if err != nil {
		return nil, err
	}
	return &Remote{edge: edge, client: client}, nil
}

// NewRemote performs the handshake over an existing connection — useful
// for tapped connections (Tap) and in-memory pipes in tests.
//
// Deprecated: use Connect for dialed connections; NewRemote remains the
// escape hatch for pre-established conns (taps, pipes) and tests.
func NewRemote(conn net.Conn, edge *Edge, opts ...DialOption) (*Remote, error) {
	var cfg dialConfig
	for _, o := range opts {
		o(&cfg)
	}
	client, err := offload.NewClient(conn, offload.Hello{Dim: edge.Dim(), Model: cfg.model}, cfg.clientOpts()...)
	if err != nil {
		return nil, err
	}
	return &Remote{edge: edge, client: client}, nil
}

// DialModel connects to a served model knowing nothing but its name (empty
// for the default) and builds the matching obfuscating Edge from the v3
// ServerHello: the server advertises the model's full public encoder setup
// (encoding, levels, seed, features — shared setup per the paper), so the
// edge needs no hand-matched flags. Extra options layer the §III-C
// defences on top (WithQueryMask, WithRawQueries).
//
// Deprecated: use Connect with TopologySingle — the Target's Model field
// and WithEdgeOptions cover this constructor exactly.
func DialModel(ctx context.Context, network, addr, model string, opts ...Option) (*Remote, error) {
	client, err := offload.Dial(ctx, network, addr, offload.Hello{Model: model})
	if err != nil {
		return nil, err
	}
	edge, err := edgeFromServerHello(client.ServerHello(), opts...)
	if err != nil {
		client.Close()
		return nil, err
	}
	return &Remote{edge: edge, client: client}, nil
}

// NewRemoteModel is DialModel over an existing connection — the
// auto-configuring sibling of NewRemote for tapped conns and pipes.
//
// Deprecated: use Connect for dialed connections; NewRemoteModel remains
// the escape hatch for pre-established conns (taps, pipes) and tests.
func NewRemoteModel(conn net.Conn, model string, opts ...Option) (*Remote, error) {
	client, err := offload.NewClient(conn, offload.Hello{Model: model})
	if err != nil {
		return nil, err
	}
	edge, err := edgeFromServerHello(client.ServerHello(), opts...)
	if err != nil {
		client.Close()
		return nil, err
	}
	return &Remote{edge: edge, client: client}, nil
}

// Dim returns the served model's dimensionality, learned in the handshake.
func (r *Remote) Dim() int { return r.client.Dim() }

// Classes returns the served model's class count, learned in the
// handshake.
func (r *Remote) Classes() int { return r.client.Classes() }

// MaxBatch returns the server's advertised per-request query limit.
func (r *Remote) MaxBatch() int { return r.client.MaxBatch() }

// Model returns the name of the served model the connection is bound to.
func (r *Remote) Model() string { return r.client.Model() }

// ModelVersion returns the served model's publication version at handshake
// time (hot swaps after the handshake bump it server-side).
func (r *Remote) ModelVersion() int { return r.client.ModelVersion() }

// Edge returns the edge obfuscating this connection's queries — the one
// passed to Dial, or the auto-configured one DialModel built.
func (r *Remote) Edge() *Edge { return r.edge }

// ListModels asks the server for its current registry listing — every
// served model's name, version, geometry and public encoder setup, with
// the default flagged — so clients can discover models over the wire
// (protocol v4) instead of through out-of-band configuration.
func (r *Remote) ListModels() ([]ModelInfo, error) {
	listings, err := r.client.ListModels()
	if err != nil {
		return nil, err
	}
	return modelInfosFromListings(listings), nil
}

// Predict obfuscates one input on the edge and classifies it remotely,
// returning the predicted label and per-class scores.
func (r *Remote) Predict(x []float64) (int, []float64, error) {
	q, err := r.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return r.client.Classify(q)
}

// PredictBatch obfuscates a batch of inputs and classifies them remotely,
// sending up to MaxBatch query vectors per round trip.
func (r *Remote) PredictBatch(X [][]float64) ([]int, error) {
	qs, err := r.edge.PrepareBatch(X)
	if err != nil {
		return nil, err
	}
	return r.client.ClassifyBatch(qs)
}

// PredictContext is Predict bounded by ctx: the remaining context budget
// rides on the request frame (Request.BudgetNs) so the server sheds work
// that can no longer answer in time, and cancellation aborts the wait. A
// blown deadline surfaces as ErrDeadlineExceeded.
func (r *Remote) PredictContext(ctx context.Context, x []float64) (int, []float64, error) {
	q, err := r.edge.Prepare(x)
	if err != nil {
		return 0, nil, err
	}
	return r.client.ClassifyContext(ctx, q)
}

// PredictPrepared classifies an already-prepared query hypervector.
func (r *Remote) PredictPrepared(q []float64) (int, []float64, error) {
	return r.PredictPreparedContext(context.Background(), q)
}

// PredictPreparedContext is PredictPrepared bounded by ctx (see
// PredictContext for the deadline semantics).
func (r *Remote) PredictPreparedContext(ctx context.Context, q []float64) (int, []float64, error) {
	if len(q) != r.edge.Dim() {
		return 0, nil, fmt.Errorf("privehd: prepared query has dim %d, edge dim %d", len(q), r.edge.Dim())
	}
	return r.client.ClassifyContext(ctx, q)
}

// Traces snapshots the process-wide client-side flight recorder.
func (r *Remote) Traces() TraceSnapshot { return ClientTraces() }

// Close closes the connection.
func (r *Remote) Close() error { return r.client.Close() }

// Wiretap records every query hypervector crossing a tapped connection —
// the honest-but-curious channel observer the §III-C obfuscation defends
// against.
type Wiretap = offload.Wiretap

// Tap wraps the client side of a connection so every outgoing query is
// also delivered to the returned Wiretap. Hand the wrapped conn to
// NewRemote.
func Tap(conn net.Conn) (net.Conn, *Wiretap) { return offload.Tap(conn) }
